//! The Sharoes client filesystem (paper §IV-A).
//!
//! Provides filesystem-like access over remotely stored SSP data: it
//! navigates the CAP-based design, performs all encryption/decryption and
//! signing/verification, maintains the write-back cache, and implements the
//! operations of Figure 8 (`getattr`, `mkdir`, `mknod`, `chmod`, `read`,
//! `write`, `close`, plus `readdir`, `unlink`, `rmdir`, `rename`,
//! `set_acl`).
//!
//! The paper's FUSE layer is replaced by this library API plus the
//! `sharoes-cli` shell (see DESIGN.md substitution #1): every cryptographic,
//! metadata, and network code path the paper measures lives here unchanged.
//!
//! One client instance is one mounted user; all four baseline
//! implementations of §V run through the same code with a different
//! [`CryptoPolicy`].

use crate::cache::{CacheKey, CacheStats, ClientCache};
use crate::cap::TableAccess;
use crate::dirtable::{ChildRef, DirTable, Row};
use crate::error::{CoreError, Result};
use crate::groups::{group_key_slot, open_group_key_block};
use crate::ids::{self, ClassTag};
use crate::keypool::SigKeyPool;
use crate::keyring::{KekChain, Pki, UserIdentity};
use crate::metadata::{open_metadata, MetaOpen, MetadataBody, SealedObject, ViewId};
use crate::params::{ClientConfig, CryptoPolicy, RevocationMode, Scheme};
use crate::scheme::{
    Layout, Manifest, ObjectAttrs, ObjectSecrets, SigPairs, SplitEntry, MANIFEST_BLOCK,
};
use crate::superblock::Superblock;
use sharoes_crypto::{HmacDrbg, RandomSource, Sha256, SymKey, SystemRandom, VerifyKey};
use sharoes_fs::{path as fspath, Acl, Gid, Mode, NodeKind, Uid, UserDb};
use sharoes_index::verify_scan_page;
use sharoes_net::{
    CostMeter, ObjectKey, OpClass, Request, Response, Transport, WireRead, WireWrite,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// What `getattr` returns — the visible attributes of Figure 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub inode: u64,
    /// File or directory.
    pub kind: NodeKind,
    /// Owner.
    pub owner: Uid,
    /// Owning group.
    pub group: Gid,
    /// Mode bits.
    pub mode: Mode,
    /// Size at last metadata update (writes update data blocks only, per
    /// Figure 8; see README "Size semantics").
    pub size: u64,
    /// Block count at last metadata update.
    pub nblocks: u32,
    /// Key epoch.
    pub generation: u64,
    /// Lazy-revocation marker.
    pub rekey_pending: bool,
}

/// One `readdir` result row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadDirEntry {
    /// Entry name.
    pub name: String,
    /// Entry kind.
    pub kind: NodeKind,
    /// Inode, when the caller's CAP exposes it (read-only CAPs list names
    /// only).
    pub inode: Option<u64>,
}

/// How to reach and open one metadata replica.
#[derive(Clone, Debug)]
struct NodeHandle {
    inode: u64,
    view: [u8; 16],
    mek: Option<SymKey>,
    mvk: Option<VerifyKey>,
}

struct MountState {
    root: NodeHandle,
}

/// A pending whole-file write staged by [`SharoesClient::write`].
struct PendingWrite {
    content: Vec<u8>,
}

/// The Sharoes client filesystem.
pub struct SharoesClient {
    transport: Box<dyn Transport>,
    meter: Arc<CostMeter>,
    config: ClientConfig,
    db: Arc<UserDb>,
    pki: Arc<Pki>,
    identity: UserIdentity,
    pool: Arc<SigKeyPool>,
    rng: HmacDrbg,
    /// Mints 128-bit trace ids for root spans. Deliberately seeded from the
    /// uid alone — never from `rng` — so enabling tracing cannot perturb
    /// nonce/inode streams (the wire-determinism regression tests depend on
    /// those being a pure function of the crypto seed).
    trace_rng: HmacDrbg,
    /// Fresh entropy mixed into inode allocation so two clients seeded with
    /// the same deterministic RNG can never collide on inode numbers.
    mount_nonce: u64,
    cache: ClientCache,
    mount: Option<MountState>,
    pending: HashMap<String, PendingWrite>,
    /// Session freshness ledger: the highest signed version observed per
    /// metadata replica and per data generation. A later observation with a
    /// lower version means the SSP replayed stale (validly signed) state —
    /// the rollback half of the paper's §VIII "integrity mechanisms" future
    /// work (full fork consistency is SUNDR's, §VI).
    freshness: HashMap<FreshKey, u64>,
    /// True after a call exhausted its transport's retries: the SSP is
    /// unreachable and the client is serving what it can from cache.
    /// Cleared by the next successful call.
    degraded: bool,
    /// This mount's versioned KEK chain (DESIGN.md §10), recovered from (or
    /// published to) the SSP by [`SharoesClient::load_kek_chain`]. `None`
    /// until loaded; escrow records are only written while a chain is held.
    kek: Option<KekChain>,
    /// Root pinning for verified scans (DESIGN.md §13): the last index
    /// root this client accepted a proof against. `None` until the first
    /// verified scan trust-on-first-use pins whatever root it sees.
    pinned_root: Option<[u8; 32]>,
    /// True once a mutation has been acknowledged since the last pin —
    /// only then may the next verified scan accept (and re-pin) a root
    /// that moved.
    root_dirty: bool,
}

/// Keys of the session freshness ledger.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum FreshKey {
    /// A metadata replica `(inode, view tag)`.
    Meta(u64, [u8; 16]),
    /// A file's data manifest within one key generation.
    Data(u64, u64),
}

impl SharoesClient {
    /// Creates a client for one user. Call [`SharoesClient::mount`] before
    /// any filesystem operation.
    pub fn new(
        transport: Box<dyn Transport>,
        config: ClientConfig,
        db: Arc<UserDb>,
        pki: Arc<Pki>,
        identity: UserIdentity,
        pool: Arc<SigKeyPool>,
    ) -> Self {
        let mut seed = [0u8; 32];
        SystemRandom::new().fill_bytes(&mut seed);
        Self::with_rng(transport, config, db, pki, identity, pool, HmacDrbg::new(&seed))
    }

    /// Like [`SharoesClient::new`] with a caller-controlled generator.
    ///
    /// The session is a pure function of the seed: the per-mount inode
    /// nonce is drawn from `rng`, so two clients built with identical
    /// seeds replay identical wire traffic (the determinism regression
    /// test depends on this). Callers mounting several same-uid sessions
    /// against one store must therefore vary the seed per mount, or their
    /// inode allocations will collide.
    pub fn with_rng(
        transport: Box<dyn Transport>,
        config: ClientConfig,
        db: Arc<UserDb>,
        pki: Arc<Pki>,
        identity: UserIdentity,
        pool: Arc<SigKeyPool>,
        mut rng: HmacDrbg,
    ) -> Self {
        let meter = Arc::clone(transport.meter());
        let cache = ClientCache::new(config.cache_capacity);
        let nonce = rng.next_u64().to_be_bytes();
        let mut trace_seed = Vec::from(&b"sharoes-trace-v1"[..]);
        trace_seed.extend_from_slice(&identity.uid.0.to_be_bytes());
        let trace_rng = HmacDrbg::new(&Sha256::digest(&trace_seed));
        SharoesClient {
            transport,
            meter,
            config,
            db,
            pki,
            identity,
            pool,
            rng,
            trace_rng,
            mount_nonce: u64::from_be_bytes(nonce),
            cache,
            mount: None,
            pending: HashMap::new(),
            freshness: HashMap::new(),
            degraded: false,
            kek: None,
            pinned_root: None,
            root_dirty: false,
        }
    }

    /// Who this client is mounted as.
    pub fn uid(&self) -> Uid {
        self.identity.uid
    }

    /// The client configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// The cost meter shared with the transport.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// True while the SSP is unreachable and the client is degraded to
    /// serving cached reads. Operations that need the network return
    /// [`CoreError::SspUnavailable`]; cache-resident `getattr`/`read`/
    /// `readdir` keep working. Cleared by the next call that reaches the
    /// SSP.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn layout(&self) -> Layout<'_> {
        Layout {
            scheme: self.config.effective_scheme(),
            policy: self.config.policy,
            block_size: self.config.block_size,
            db: &self.db,
            pki: &self.pki,
        }
    }

    fn signs(&self) -> bool {
        self.config.policy.signs()
    }

    fn encrypts_data(&self) -> bool {
        self.config.policy.encrypts_data()
    }

    // ---------------------------------------------------------------- I/O

    fn call(&mut self, req: &Request) -> Result<Response> {
        use sharoes_net::ErrorClass;
        let to_core = |this: &mut Self, err: sharoes_net::NetError| match err.class() {
            // Retries exhausted on a retryable failure = connectivity loss.
            // Flag degraded mode and surface a typed, non-panicking error;
            // cache-resident reads keep working around it.
            ErrorClass::Retryable => {
                if !this.degraded {
                    sharoes_obs::counter("core_degraded_entries_total").inc();
                    sharoes_obs::obs_event!(sharoes_obs::Level::Warn, "core.degraded");
                }
                this.degraded = true;
                Err(CoreError::SspUnavailable(err.to_string()))
            }
            ErrorClass::Fatal => Err(CoreError::Net(err)),
        };
        match self.transport.call(req) {
            Ok(Response::Error(msg)) => to_core(self, sharoes_net::NetError::Remote(msg)),
            Ok(other) => {
                self.degraded = false;
                // An acknowledged mutation legitimately moves the SSP's
                // index root; let the next verified scan re-pin.
                if matches!(OpClass::of(req), OpClass::Put | OpClass::Delete) {
                    self.root_dirty = true;
                }
                Ok(other)
            }
            Err(e) => to_core(self, e),
        }
    }

    fn fetch(&mut self, key: ObjectKey) -> Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key })? {
            Response::Object(v) => Ok(v),
            _ => Err(CoreError::Corrupt("unexpected response to Get")),
        }
    }

    fn fetch_many(&mut self, keys: Vec<ObjectKey>) -> Result<Vec<Option<Vec<u8>>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        match self.call(&Request::GetMany { keys })? {
            Response::Objects(v) => Ok(v),
            _ => Err(CoreError::Corrupt("unexpected response to GetMany")),
        }
    }

    fn put_many(&mut self, items: Vec<(ObjectKey, Vec<u8>)>) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        match self.call(&Request::PutMany { items })? {
            Response::Ok => Ok(()),
            _ => Err(CoreError::Corrupt("unexpected response to PutMany")),
        }
    }

    fn delete_many(&mut self, keys: Vec<ObjectKey>) -> Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        match self.call(&Request::DeleteMany { keys })? {
            Response::Ok => Ok(()),
            _ => Err(CoreError::Corrupt("unexpected response to DeleteMany")),
        }
    }

    // ------------------------------------------------- verified listings

    /// One page of the SSP keyspace under a Merkle range proof (DESIGN.md
    /// §13): the page provably contains exactly the stored keys in
    /// `(after, page-end]`, in order — the SSP cannot omit, inject, or
    /// reorder entries without detection.
    ///
    /// Roots are pinned trust-on-first-use: the first verified scan adopts
    /// whatever root it sees; afterwards the SSP may present a *different*
    /// root only after this client's own acknowledged mutation (which
    /// legitimately moves the keyspace). A page whose proof fails, or a
    /// root that moved with no local mutation, returns
    /// [`CoreError::ScanForged`] and leaves the pin untouched.
    pub fn verified_scan(
        &mut self,
        after: Option<ObjectKey>,
        limit: u32,
    ) -> Result<(Vec<ObjectKey>, bool)> {
        let _span = self.op_span("core.verified_scan", || format!("limit={limit}"));
        let (keys, done, root, proof) = match self.call(&Request::ScanVerified { after, limit })? {
            Response::KeysProof { keys, done, root, proof } => (keys, done, root, proof),
            _ => return Err(CoreError::Corrupt("unexpected response to ScanVerified")),
        };
        if let Some(pinned) = self.pinned_root {
            if pinned != root && !self.root_dirty {
                sharoes_obs::counter("core_scan_root_rejections_total").inc();
                return Err(CoreError::ScanForged(format!(
                    "index root moved without a local mutation (pinned {}…, got {}…)",
                    hex_prefix(&pinned),
                    hex_prefix(&root),
                )));
            }
        }
        verify_scan_page(&root, after.as_ref(), limit, &keys, done, &proof)
            .map_err(|e| CoreError::ScanForged(e.to_string()))?;
        // Proof good against a root we accept: (re)pin it.
        self.pinned_root = Some(root);
        self.root_dirty = false;
        Ok((keys, done))
    }

    /// Walks the whole keyspace through [`SharoesClient::verified_scan`]
    /// pages of `limit` keys, verifying every page. The complete listing
    /// or the first page's typed failure.
    pub fn verified_scan_all(&mut self, limit: u32) -> Result<Vec<ObjectKey>> {
        let mut out: Vec<ObjectKey> = Vec::new();
        let mut after: Option<ObjectKey> = None;
        loop {
            let (keys, done) = self.verified_scan(after, limit)?;
            after = keys.last().copied().or(after);
            out.extend(keys);
            if done {
                return Ok(out);
            }
        }
    }

    /// The index root this client has pinned, once a verified scan has run.
    pub fn pinned_root(&self) -> Option<[u8; 32]> {
        self.pinned_root
    }

    /// Records an observed signed version, flagging regressions as rollback.
    fn check_freshness(&mut self, key: FreshKey, observed: u64, what: &str) -> Result<()> {
        match self.freshness.get(&key) {
            Some(&seen) if observed < seen => Err(CoreError::TamperDetected(format!(
                "{what} rolled back from version {seen} to {observed}"
            ))),
            _ => {
                self.freshness.insert(key, observed);
                Ok(())
            }
        }
    }

    /// Runs `f`, charging its wall time to the CRYPTO cost component (and,
    /// when a trace span is live, to its `crypto` phase).
    fn timed_crypto<T>(meter: &CostMeter, f: impl FnOnce() -> T) -> T {
        use std::sync::OnceLock;
        static CRYPTO_NS: OnceLock<sharoes_obs::Histogram> = OnceLock::new();
        let t0 = Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos() as u64;
        meter.charge_crypto_ns(ns);
        CRYPTO_NS.get_or_init(|| sharoes_obs::histogram_ns("core_crypto_op_ns")).observe(ns);
        sharoes_obs::phase_add(sharoes_obs::Phase::Crypto, ns);
        out
    }

    /// Opens the root span for one client operation. When no trace is live
    /// on this thread, a fresh 128-bit trace id is minted from the client's
    /// dedicated trace DRBG and becomes the root every nested span — local
    /// and, via the wire header, remote — hangs under. Inside an existing
    /// trace the span is an ordinary child. The root span id is a pure
    /// function of (trace id, op name), so re-running a seeded workload
    /// reproduces the whole tree byte for byte.
    fn op_span(
        &mut self,
        name: &'static str,
        fields: impl FnOnce() -> String,
    ) -> sharoes_obs::SpanGuard {
        use sharoes_obs::{Level, SpanGuard, TraceContext};
        if sharoes_obs::in_span() || !sharoes_obs::tracer().enabled("core", Level::Debug) {
            return SpanGuard::enter(name, fields);
        }
        let hi = self.trace_rng.next_u64() as u128;
        let lo = self.trace_rng.next_u64() as u128;
        let trace_id = (hi << 64) | lo;
        let mut buf = Vec::with_capacity(16 + name.len());
        buf.extend_from_slice(&trace_id.to_be_bytes());
        buf.extend_from_slice(name.as_bytes());
        let span_id = sharoes_obs::trace::fnv1a_64(&buf).max(1);
        SpanGuard::enter_with(name, TraceContext { trace_id, span_id, parent_id: 0 }, fields)
    }

    // -------------------------------------------------------------- mount

    /// Mounts the filesystem: decrypts this user's superblock with their
    /// private key (the one-time public-key operation of §III-C) and
    /// recovers group keys in-band (§II-A).
    pub fn mount(&mut self) -> Result<()> {
        let _span = self.op_span("core.mount", String::new);
        let uid = self.identity.uid;
        let sb_key = ObjectKey::superblock(ids::superblock_view(uid));
        let blob = self
            .fetch(sb_key)?
            .ok_or_else(|| CoreError::NotFound(format!("superblock for {uid}")))?;
        let meter = Arc::clone(&self.meter);
        let private = self.identity.private.clone();
        let sb = Self::timed_crypto(&meter, || Superblock::open_with(&private, &blob))?;

        // Group key blocks, one fetch for all memberships.
        let gids = self.db.groups_of(uid);
        let slots: Vec<ObjectKey> = gids.iter().map(|&g| group_key_slot(g, uid)).collect();
        let blobs = self.fetch_many(slots)?;
        for (gid, blob) in gids.into_iter().zip(blobs) {
            if let Some(blob) = blob {
                let key = Self::timed_crypto(&meter, || open_group_key_block(&private, &blob))?;
                self.identity.install_group_key(gid, key);
            }
        }

        self.cache.clear();
        self.pending.clear();
        self.freshness.clear();
        self.mount = Some(MountState {
            root: NodeHandle {
                inode: sb.root_inode,
                view: sb.root_view,
                mek: sb.root_mek,
                mvk: sb.root_mvk,
            },
        });
        Ok(())
    }

    /// True once mounted.
    pub fn is_mounted(&self) -> bool {
        self.mount.is_some()
    }

    // ------------------------------------------------------ metadata path

    /// Fetches, verifies, and decrypts one metadata replica (the `getattr`
    /// path of Figure 8: one network receive plus one decryption).
    fn open_metadata_at(&mut self, h: &NodeHandle) -> Result<MetadataBody> {
        let ck = CacheKey::Meta(h.inode, h.view);
        if let Some(bytes) = self.cache.get(&ck) {
            return MetadataBody::from_wire(&bytes)
                .map_err(|_| CoreError::Corrupt("cached metadata"));
        }
        let key = ObjectKey::metadata(h.inode, h.view);
        let blob = self
            .fetch(key)?
            .ok_or_else(|| CoreError::NotFound(format!("metadata inode#{}", h.inode)))?;
        let sealed =
            SealedObject::from_wire(&blob).map_err(|_| CoreError::Corrupt("sealed metadata"))?;

        let meter = Arc::clone(&self.meter);
        let policy = self.config.policy;
        let signs = self.signs();
        let private = self.identity.private.clone();
        let plain = Self::timed_crypto(&meter, || -> Result<Vec<u8>> {
            sealed.verify(&key, if signs { h.mvk.as_ref() } else { None })?;
            let opener = match policy {
                CryptoPolicy::NoEncMdD | CryptoPolicy::NoEncMd => MetaOpen::Plain,
                CryptoPolicy::Sharoes => {
                    let mek = h.mek.as_ref().ok_or(CoreError::PermissionDenied {
                        path: format!("inode#{}", h.inode),
                        needed: "MEK (metadata key)",
                    })?;
                    MetaOpen::Sym(mek)
                }
                CryptoPolicy::Public => MetaOpen::Public(&private),
                CryptoPolicy::PubOpt => MetaOpen::PubOpt(&private),
            };
            open_metadata(opener, &sealed.ciphertext)
        })?;
        let body =
            MetadataBody::from_wire(&plain).map_err(|_| CoreError::Corrupt("metadata body"))?;
        if body.inode != h.inode {
            return Err(CoreError::TamperDetected(format!(
                "metadata inode mismatch: expected {}, got {}",
                h.inode, body.inode
            )));
        }
        self.check_freshness(
            FreshKey::Meta(h.inode, h.view),
            body.version,
            &format!("metadata inode#{}", h.inode),
        )?;
        self.cache.put(ck, plain);
        Ok(body)
    }

    /// Scheme-2 split-point resolution (§III-D.2): if this user's class on
    /// the object differs from the continuation replica we landed on,
    /// follow the per-user/per-group split entry to the right CAP.
    fn reconcile(
        &mut self,
        h: NodeHandle,
        body: MetadataBody,
    ) -> Result<(NodeHandle, MetadataBody)> {
        if self.config.effective_scheme() != Scheme::SharedCaps {
            return Ok((h, body));
        }
        let attrs = ObjectAttrs::from_body(&body);
        let my_class = attrs.class_of(self.identity.uid, &self.db);
        let my_tag = ViewId::Class(my_class).tag(h.inode);
        if my_tag == h.view {
            return Ok((h, body));
        }

        // Candidate split slots: personal first, then group-addressed.
        let mut candidates: Vec<(ObjectKey, Option<Gid>)> = vec![(
            ObjectKey::metadata(h.inode, ids::split_user_view(h.inode, self.identity.uid)),
            None,
        )];
        for gid in self.db.groups_of(self.identity.uid) {
            candidates.push((
                ObjectKey::metadata(h.inode, ids::split_group_view(h.inode, gid)),
                Some(gid),
            ));
        }

        for (slot, via_group) in candidates {
            let ck = CacheKey::Meta(slot.inode, slot.view);
            let plain = if let Some(bytes) = self.cache.get(&ck) {
                Some(bytes)
            } else {
                match self.fetch(slot)? {
                    None => None,
                    Some(blob) => {
                        let meter = Arc::clone(&self.meter);
                        let key = match via_group {
                            None => Some(self.identity.private.clone()),
                            Some(gid) => self.identity.group_key(gid),
                        };
                        let Some(key) = key else { continue };
                        let decrypted = Self::timed_crypto(&meter, || key.decrypt_blob(&blob));
                        match decrypted {
                            Ok(plain) => {
                                self.cache.put(ck, plain.clone());
                                Some(plain)
                            }
                            Err(_) => continue, // not addressed to us
                        }
                    }
                }
            };
            let Some(plain) = plain else { continue };
            let entry =
                SplitEntry::from_wire(&plain).map_err(|_| CoreError::Corrupt("split entry"))?;
            let nh =
                NodeHandle { inode: h.inode, view: entry.view, mek: entry.mek, mvk: entry.mvk };
            let nbody = self.open_metadata_at(&nh)?;
            return Ok((nh, nbody));
        }
        // No entry: the continuation CAP is (at least) our class's CAP —
        // permissions may coincide. Use it.
        Ok((h, body))
    }

    /// Fetches, verifies, and decrypts the directory-table replica for `h`.
    fn open_table(&mut self, h: &NodeHandle, body: &MetadataBody) -> Result<DirTable> {
        let ck = CacheKey::Table(h.inode, h.view);
        if let Some(bytes) = self.cache.get(&ck) {
            return DirTable::from_wire(&bytes).map_err(|_| CoreError::Corrupt("cached table"));
        }
        let key = ObjectKey::data(h.inode, h.view, 0);
        let blob = self.fetch(key)?.ok_or(CoreError::PermissionDenied {
            path: format!("inode#{}", h.inode),
            needed: "directory-table access (no replica for this CAP)",
        })?;
        let sealed =
            SealedObject::from_wire(&blob).map_err(|_| CoreError::Corrupt("sealed table"))?;
        let meter = Arc::clone(&self.meter);
        let signs = self.signs();
        let encrypts = self.encrypts_data();
        let dvk = body.dvk.clone();
        let tek = body.dek.clone();
        let plain = Self::timed_crypto(&meter, || -> Result<Vec<u8>> {
            sealed.verify(&key, if signs { dvk.as_ref() } else { None })?;
            if encrypts {
                let tek = tek.as_ref().ok_or(CoreError::PermissionDenied {
                    path: format!("inode#{}", h.inode),
                    needed: "DEK (directory table key)",
                })?;
                Ok(tek.open(&sealed.ciphertext)?)
            } else {
                Ok(sealed.ciphertext.clone())
            }
        })?;
        let table = DirTable::from_wire(&plain).map_err(|_| CoreError::Corrupt("table body"))?;
        self.cache.put(ck, plain);
        Ok(table)
    }

    /// Resolves an absolute path to `(handle, body)` with traversal checks.
    fn resolve(&mut self, path: &str) -> Result<(NodeHandle, MetadataBody)> {
        let parts = fspath::split(path)?;
        let root = self.mount.as_ref().ok_or(CoreError::NotMounted)?.root.clone();
        let mut h = root;
        let mut body = self.open_metadata_at(&h)?;
        let (nh, nbody) = self.reconcile(h, body)?;
        h = nh;
        body = nbody;

        for (i, comp) in parts.iter().enumerate() {
            let attrs = ObjectAttrs::from_body(&body);
            if attrs.kind != NodeKind::Dir {
                return Err(CoreError::NotADirectory(fspath::join(&parts[..i])));
            }
            let perm = attrs.perm_of(self.identity.uid, &self.db);
            if !perm.exec {
                return Err(CoreError::PermissionDenied {
                    path: fspath::join(&parts[..i]),
                    needed: "exec (traverse)",
                });
            }
            let table = self.open_table(&h, &body)?;
            let tek = body.dek.clone();
            let child = match table.lookup(comp, tek.as_ref())? {
                Some(child) => child,
                None => {
                    // The cached table may predate another client's create:
                    // revalidate once before declaring the entry missing.
                    self.cache.invalidate(&CacheKey::Table(h.inode, h.view));
                    let fresh = self.open_table(&h, &body)?;
                    fresh
                        .lookup(comp, tek.as_ref())?
                        .ok_or_else(|| CoreError::NotFound(fspath::join(&parts[..=i])))?
                }
            };
            h = NodeHandle { inode: child.inode, view: child.view, mek: child.mek, mvk: child.mvk };
            body = self.open_metadata_at(&h)?;
            let (nh, nbody) = self.reconcile(h, body)?;
            h = nh;
            body = nbody;
        }
        Ok((h, body))
    }

    // ------------------------------------------------------------ readers

    /// `stat`: attributes of the object at `path` (Figure 8 `getattr`).
    pub fn getattr(&mut self, path: &str) -> Result<FileStat> {
        let _span = self.op_span("core.getattr", || format!("path={path:?}"));
        let (_, body) = self.resolve(path)?;
        Ok(FileStat {
            inode: body.inode,
            kind: body.kind,
            owner: Uid(body.owner),
            group: Gid(body.group),
            mode: Mode::from_octal(body.mode),
            size: body.size,
            nblocks: body.nblocks,
            generation: body.generation,
            rekey_pending: body.rekey_pending,
        })
    }

    /// Lists a directory (requires the read permission; exec-only CAPs
    /// cannot list — §III-A).
    pub fn readdir(&mut self, path: &str) -> Result<Vec<ReadDirEntry>> {
        let _span = self.op_span("core.readdir", || format!("path={path:?}"));
        let (h, body) = self.resolve(path)?;
        let attrs = ObjectAttrs::from_body(&body);
        if attrs.kind != NodeKind::Dir {
            return Err(CoreError::NotADirectory(path.to_string()));
        }
        let perm = attrs.perm_of(self.identity.uid, &self.db);
        if !perm.read {
            return Err(CoreError::PermissionDenied { path: path.to_string(), needed: "read" });
        }
        let table = self.open_table(&h, &body)?;
        Ok(table
            .list()
            .into_iter()
            .map(|(name, kind, child)| ReadDirEntry { name, kind, inode: child.map(|c| c.inode) })
            .collect())
    }

    /// Fetches, verifies, and decrypts the data manifest — the per-file
    /// DSK-signed object that authenticates every block (§II-B: "writers
    /// sign the hash of the file content"). Speculatively fetches block 0 in
    /// the same round trip on a cold read.
    fn load_manifest(&mut self, body: &MetadataBody) -> Result<Manifest> {
        let inode = body.inode;
        let generation = body.generation;
        let ck = CacheKey::Manifest(inode, generation);
        if let Some(bytes) = self.cache.get(&ck) {
            return Layout::parse_manifest(&bytes);
        }
        let dview = ids::data_view(inode, generation);
        let mkey = ObjectKey::data(inode, dview, MANIFEST_BLOCK);
        let b0key = ObjectKey::data(inode, dview, 0);
        let fetched = self.fetch_many(vec![mkey, b0key])?;
        let mblob = fetched[0].clone().ok_or(CoreError::Corrupt("missing data manifest"))?;
        let mplain = self.open_manifest_record(&mkey, &mblob, body)?;
        let manifest = Layout::parse_manifest(&mplain)?;
        self.check_freshness(
            FreshKey::Data(inode, generation),
            manifest.version,
            &format!("data manifest inode#{inode}"),
        )?;
        self.cache.put(ck, mplain);
        if let Some(b0) = &fetched[1] {
            if let Ok(plain) = self.open_data_block(&b0key, b0, body, manifest.hash_of(0)) {
                self.cache.put(CacheKey::Block(inode, generation, 0), plain);
            }
        }
        Ok(manifest)
    }

    /// Like [`Self::load_manifest`] but without the speculative block-0
    /// fetch (used by close, which overwrites the data anyway).
    fn load_manifest_lean(&mut self, body: &MetadataBody) -> Result<Manifest> {
        let ck = CacheKey::Manifest(body.inode, body.generation);
        if let Some(bytes) = self.cache.get(&ck) {
            return Layout::parse_manifest(&bytes);
        }
        let dview = ids::data_view(body.inode, body.generation);
        let mkey = ObjectKey::data(body.inode, dview, MANIFEST_BLOCK);
        let blob = self.fetch(mkey)?.ok_or(CoreError::Corrupt("missing data manifest"))?;
        let plain = self.open_manifest_record(&mkey, &blob, body)?;
        let manifest = Layout::parse_manifest(&plain)?;
        self.check_freshness(
            FreshKey::Data(body.inode, body.generation),
            manifest.version,
            &format!("data manifest inode#{}", body.inode),
        )?;
        self.cache.put(ck, plain);
        Ok(manifest)
    }

    /// Verifies (signature) and decrypts the manifest record.
    fn open_manifest_record(
        &mut self,
        key: &ObjectKey,
        blob: &[u8],
        body: &MetadataBody,
    ) -> Result<Vec<u8>> {
        let sealed =
            SealedObject::from_wire(blob).map_err(|_| CoreError::Corrupt("sealed manifest"))?;
        let meter = Arc::clone(&self.meter);
        let signs = self.signs();
        let encrypts = self.encrypts_data();
        let dvk = body.dvk.clone();
        let dek = body.dek.clone();
        Self::timed_crypto(&meter, || -> Result<Vec<u8>> {
            sealed.verify(key, if signs { dvk.as_ref() } else { None })?;
            if encrypts {
                let dek = dek.as_ref().ok_or(CoreError::PermissionDenied {
                    path: format!("inode#{}", key.inode),
                    needed: "DEK (read)",
                })?;
                Ok(dek.open(&sealed.ciphertext)?)
            } else {
                Ok(sealed.ciphertext.clone())
            }
        })
    }

    /// Decrypts one (unsigned) data block, authenticating its ciphertext
    /// against the manifest hash when the policy signs.
    fn open_data_block(
        &mut self,
        key: &ObjectKey,
        blob: &[u8],
        body: &MetadataBody,
        expected_hash: Option<&[u8; 32]>,
    ) -> Result<Vec<u8>> {
        let sealed =
            SealedObject::from_wire(blob).map_err(|_| CoreError::Corrupt("sealed block"))?;
        let meter = Arc::clone(&self.meter);
        let signs = self.signs();
        let encrypts = self.encrypts_data();
        let dek = body.dek.clone();
        Self::timed_crypto(&meter, || -> Result<Vec<u8>> {
            if signs {
                let expected = expected_hash.ok_or_else(|| {
                    CoreError::TamperDetected(format!("block {key:?} not covered by manifest"))
                })?;
                let actual = sharoes_crypto::Sha256::digest(&sealed.ciphertext);
                if !sharoes_crypto::ct_eq(&actual, expected) {
                    return Err(CoreError::TamperDetected(format!(
                        "block hash mismatch on {key:?}"
                    )));
                }
            }
            if encrypts {
                let dek = dek.as_ref().ok_or(CoreError::PermissionDenied {
                    path: format!("inode#{}", key.inode),
                    needed: "DEK (read)",
                })?;
                Ok(dek.open(&sealed.ciphertext)?)
            } else {
                Ok(sealed.ciphertext.clone())
            }
        })
    }

    /// Reads a whole file (Figure 8 `read`: obtain data and decrypt).
    pub fn read(&mut self, path: &str) -> Result<Vec<u8>> {
        let _span = self.op_span("core.read", || format!("path={path:?}"));
        // Unflushed local writes are visible to the writer.
        if let Some(p) = self.pending.get(path) {
            return Ok(p.content.clone());
        }
        let (_, body) = self.resolve(path)?;
        let attrs = ObjectAttrs::from_body(&body);
        if attrs.kind != NodeKind::File {
            return Err(CoreError::IsADirectory(path.to_string()));
        }
        let perm = attrs.perm_of(self.identity.uid, &self.db);
        if !perm.read {
            return Err(CoreError::PermissionDenied { path: path.to_string(), needed: "read" });
        }
        if self.encrypts_data() && body.dek.is_none() {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "DEK (read)",
            });
        }

        let manifest = self.load_manifest(&body)?;
        let inode = body.inode;
        let generation = body.generation;
        let dview = ids::data_view(inode, generation);

        // Blocks are assembled from local copies; the cache is populated
        // opportunistically and may evict under a small capacity without
        // affecting correctness.
        let mut blocks: Vec<Option<Vec<u8>>> = vec![None; manifest.nblocks as usize];
        let mut missing = Vec::new();
        for (i, slot) in blocks.iter_mut().enumerate() {
            if let Some(bytes) = self.cache.get(&CacheKey::Block(inode, generation, i as u32)) {
                *slot = Some(bytes);
            } else {
                missing.push(ObjectKey::data(inode, dview, i as u32));
            }
        }
        let fetched = self.fetch_many(missing.clone())?;
        for (key, blob) in missing.iter().zip(fetched) {
            let blob = blob.ok_or(CoreError::Corrupt("missing data block"))?;
            let plain = self.open_data_block(key, &blob, &body, manifest.hash_of(key.block))?;
            self.cache.put(CacheKey::Block(inode, generation, key.block), plain.clone());
            blocks[key.block as usize] = Some(plain);
        }

        let mut out = Vec::with_capacity(manifest.size as usize);
        for block in blocks {
            out.extend_from_slice(&block.ok_or(CoreError::Corrupt("missing data block"))?);
        }
        out.truncate(manifest.size as usize);
        Ok(out)
    }

    // ------------------------------------------------------------ writers

    /// Stages a whole-file write. "We cache all writes locally and only
    /// encrypt the file before sending it to the SSP as the result of a
    /// file close" (§IV-A.1).
    pub fn write(&mut self, path: &str, data: &[u8]) -> Result<()> {
        let _span = self.op_span("core.write", || format!("path={path:?}"));
        let (_, body) = self.resolve(path)?;
        let attrs = ObjectAttrs::from_body(&body);
        if attrs.kind != NodeKind::File {
            return Err(CoreError::IsADirectory(path.to_string()));
        }
        let perm = attrs.perm_of(self.identity.uid, &self.db);
        if !perm.write {
            return Err(CoreError::PermissionDenied { path: path.to_string(), needed: "write" });
        }
        if self.encrypts_data() && body.dek.is_none() {
            return Err(CoreError::PermissionDenied { path: path.to_string(), needed: "DEK" });
        }
        if self.signs() && body.dsk.is_none() {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "DSK (write)",
            });
        }
        self.pending.insert(path.to_string(), PendingWrite { content: data.to_vec() });
        Ok(())
    }

    /// Flushes a staged write (Figure 8 `close`: encrypt file, send to
    /// server — one data encryption, one data send).
    pub fn close(&mut self, path: &str) -> Result<()> {
        let Some(pending) = self.pending.remove(path) else {
            return Ok(()); // close without write is a no-op
        };
        let (h, mut body) = self.resolve(path)?;

        // Lazy-revocation hook: an owner flushing content rotates the DEK.
        if body.rekey_pending && self.config.policy == CryptoPolicy::Sharoes && body.msk.is_some() {
            self.rekey_and_write(h, body, &pending.content)?;
            return Ok(());
        }

        let inode = body.inode;
        let generation = body.generation;
        let dview = ids::data_view(inode, generation);
        // Only the block count (and write version) matter here; skip the
        // speculative block-0 fetch the read path does.
        let (old_nblocks, old_version) =
            self.load_manifest_lean(&body).map(|m| (m.nblocks, m.version)).unwrap_or((0, 0));

        let records = self.seal_file_content(&body, &pending.content, old_version + 1)?;
        self.freshness.insert(FreshKey::Data(inode, generation), old_version + 1);
        let new_nblocks = pending.content.len().div_ceil(self.config.block_size.max(1)) as u32;
        if old_nblocks > new_nblocks {
            // Shrink: clear stale trailing blocks first.
            self.call(&Request::DeleteBlocks { inode, view: dview })?;
        }
        self.put_many(records)?;

        // Refresh caches with the new plaintext (manifest refetched lazily:
        // its hashes live in the sealed records we just built).
        self.cache.invalidate(&CacheKey::Manifest(inode, generation));
        for i in 0..old_nblocks.max(new_nblocks) {
            self.cache.invalidate(&CacheKey::Block(inode, generation, i));
        }
        for (i, chunk) in pending.content.chunks(self.config.block_size.max(1)).enumerate() {
            self.cache.put(CacheKey::Block(inode, generation, i as u32), chunk.to_vec());
        }
        body.size = pending.content.len() as u64;
        Ok(())
    }

    /// Seals file content into manifest + block records using the keys in
    /// `body` (a writer's CAP).
    fn seal_file_content(
        &mut self,
        body: &MetadataBody,
        content: &[u8],
        version: u64,
    ) -> Result<Vec<(ObjectKey, Vec<u8>)>> {
        let inode = body.inode;
        let dview = ids::data_view(inode, body.generation);
        let block_size = self.config.block_size.max(1);
        let nblocks = if content.is_empty() { 0 } else { content.len().div_ceil(block_size) };

        let meter = Arc::clone(&self.meter);
        let encrypts = self.encrypts_data();
        let signs = self.signs();
        let dek = body.dek.clone();
        let dsk = body.dsk.clone();
        let mut rng = self.rng.clone();
        let records = Self::timed_crypto(&meter, || -> Result<Vec<(ObjectKey, Vec<u8>)>> {
            let seal_plain = |plain: &[u8], rng: &mut HmacDrbg| -> Result<Vec<u8>> {
                if encrypts {
                    Ok(dek
                        .as_ref()
                        .ok_or(CoreError::PermissionDenied {
                            path: format!("inode#{inode}"),
                            needed: "DEK",
                        })?
                        .seal(rng, plain))
                } else {
                    Ok(plain.to_vec())
                }
            };

            let mut blocks = Vec::with_capacity(nblocks);
            let mut block_hashes = Vec::with_capacity(if signs { nblocks } else { 0 });
            for (i, chunk) in content.chunks(block_size).enumerate() {
                let key = ObjectKey::data(inode, dview, i as u32);
                let ciphertext = seal_plain(chunk, &mut rng)?;
                if signs {
                    block_hashes.push(sharoes_crypto::Sha256::digest(&ciphertext));
                }
                blocks.push((key, SealedObject::unsigned(ciphertext).to_wire()));
            }

            let manifest = Manifest {
                size: content.len() as u64,
                version,
                nblocks: nblocks as u32,
                block_hashes,
            };
            let mkey = ObjectKey::data(inode, dview, MANIFEST_BLOCK);
            let mciphertext = seal_plain(&manifest.to_wire(), &mut rng)?;
            let msealed = if signs {
                let dsk = dsk.as_ref().ok_or(CoreError::PermissionDenied {
                    path: format!("inode#{inode}"),
                    needed: "DSK (write)",
                })?;
                SealedObject::signed(mciphertext, &mkey, dsk, &mut rng)
            } else {
                SealedObject::unsigned(mciphertext)
            };

            let mut out = Vec::with_capacity(nblocks + 1);
            out.push((mkey, msealed.to_wire()));
            out.extend(blocks);
            Ok(out)
        })?;
        // Advance the client RNG past the states the closure consumed.
        self.rng.reseed(b"seal-file-content");
        Ok(records)
    }

    /// Convenience: write + close in one call.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<()> {
        let _span = self.op_span("core.write_file", || format!("path={path:?}"));
        self.write(path, data)?;
        self.close(path)
    }

    /// Creates an empty file (Figure 8 `mknod`).
    pub fn create(&mut self, path: &str, mode: Mode) -> Result<u64> {
        self.create_child(path, mode, NodeKind::File)
    }

    /// Creates a directory (Figure 8 `mkdir`).
    pub fn mkdir(&mut self, path: &str, mode: Mode) -> Result<u64> {
        self.create_child(path, mode, NodeKind::Dir)
    }

    fn alloc_inode(&mut self) -> u64 {
        // Random 64-bit inode numbers: collision-free in practice and
        // allocatable without coordination between distributed clients. The
        // per-mount nonce guarantees distinctness even across clients built
        // from identical deterministic RNG seeds.
        loop {
            let candidate = self.rng.next_u64() ^ self.mount_nonce;
            if candidate > 1 {
                return candidate;
            }
        }
    }

    fn primary_gid(&self) -> Result<Gid> {
        self.db
            .user(self.identity.uid)
            .map(|u| u.primary_gid)
            .ok_or_else(|| CoreError::UnknownPrincipal(self.identity.uid.to_string()))
    }

    fn create_child(&mut self, path: &str, mode: Mode, kind: NodeKind) -> Result<u64> {
        let _span = self.op_span("core.create", || format!("path={path:?} kind={kind:?}"));
        let (parent_parts, name) = fspath::split_parent(path)?;
        fspath::validate_name(name)?;
        let parent_path = fspath::join(&parent_parts);
        let name = name.to_string();
        let (ph, pbody) = self.resolve(&parent_path)?;
        let pattrs = ObjectAttrs::from_body(&pbody);
        if pattrs.kind != NodeKind::Dir {
            return Err(CoreError::NotADirectory(parent_path));
        }
        let perm = pattrs.perm_of(self.identity.uid, &self.db);
        if !(perm.write && perm.exec) {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "write+exec on parent",
            });
        }
        // Duplicate check through our own (full) table view.
        let table = self.open_table(&ph, &pbody)?;
        if table.lookup(&name, pbody.dek.as_ref())?.is_some() {
            return Err(CoreError::AlreadyExists(path.to_string()));
        }

        let inode = self.alloc_inode();
        let gid = self.primary_gid()?;
        let child_attrs = ObjectAttrs::new(inode, kind, self.identity.uid, gid, mode);
        self.layout().validate_perms(&child_attrs)?;

        let meter = Arc::clone(&self.meter);
        let pool = Arc::clone(&self.pool);
        let mut rng = self.rng.clone();
        let child_secrets = {
            let layout = self.layout();
            Self::timed_crypto(&meter, || layout.generate_secrets(&child_attrs, &pool, &mut rng))
        };
        self.rng.reseed(b"create-child");

        // Child records: metadata replicas + (empty) content.
        let mut records = {
            let meter = Arc::clone(&self.meter);
            let mut rng = self.rng.clone();
            let layout = self.layout();
            let recs = Self::timed_crypto(&meter, || -> Result<Vec<(ObjectKey, Vec<u8>)>> {
                let mut recs = layout.metadata_records(&child_attrs, &child_secrets, &mut rng)?;
                match kind {
                    NodeKind::File => {
                        recs.extend(layout.data_records(
                            &child_attrs,
                            &child_secrets,
                            &[],
                            &mut rng,
                        ));
                    }
                    NodeKind::Dir => {
                        let (tables, _) =
                            layout.table_records(&child_attrs, &child_secrets, &[], &mut rng)?;
                        recs.extend(tables);
                    }
                }
                Ok(recs)
            })?;
            self.rng.reseed(b"create-records");
            recs
        };

        // Parent tables: add one row per view (the "[*] per required CAP"
        // cost of Figure 8), collecting split targets for the new child.
        let (table_records, divergent) = self.rebuild_parent_tables(
            &ph,
            &pbody,
            TableEdit::Insert { name: &name, child: &child_attrs, child_secrets: &child_secrets },
        )?;
        records.extend(table_records);

        if !divergent.is_empty() {
            let meter = Arc::clone(&self.meter);
            let mut rng = self.rng.clone();
            let layout = self.layout();
            let splits = Self::timed_crypto(&meter, || {
                layout.split_records(&child_attrs, &child_secrets, &divergent, &mut rng)
            })?;
            self.rng.reseed(b"create-splits");
            records.extend(splits);
        }

        // One round trip ships everything (paper mkdir: "send both").
        self.put_many(records)?;

        // rebuild_parent_tables refreshed the table caches in place.
        Ok(inode)
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        self.remove_child(path, NodeKind::File)
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<()> {
        self.remove_child(path, NodeKind::Dir)
    }

    fn remove_child(&mut self, path: &str, expect: NodeKind) -> Result<()> {
        let _span = self.op_span("core.remove", || format!("path={path:?}"));
        let (parent_parts, name) = fspath::split_parent(path)?;
        let parent_path = fspath::join(&parent_parts);
        let name = name.to_string();
        let (ph, pbody) = self.resolve(&parent_path)?;
        let pattrs = ObjectAttrs::from_body(&pbody);
        let perm = pattrs.perm_of(self.identity.uid, &self.db);
        if !(perm.write && perm.exec) {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "write+exec on parent",
            });
        }

        let (ch, cbody) = self.resolve(path)?;
        let cattrs = ObjectAttrs::from_body(&cbody);
        match (expect, cattrs.kind) {
            (NodeKind::File, NodeKind::Dir) => {
                return Err(CoreError::IsADirectory(path.to_string()))
            }
            (NodeKind::Dir, NodeKind::File) => {
                return Err(CoreError::NotADirectory(path.to_string()))
            }
            _ => {}
        }
        if expect == NodeKind::Dir {
            // Emptiness check requires a table-bearing CAP on the child.
            let table = self.open_table(&ch, &cbody)?;
            if !table.is_empty() {
                return Err(CoreError::NotEmpty(path.to_string()));
            }
        }

        let (table_records, _) =
            self.rebuild_parent_tables(&ph, &pbody, TableEdit::Remove { name: &name })?;
        self.put_many(table_records)?;

        // Delete the child's replicas, split entries, and data.
        let mut doomed = self.layout().replica_slots(&cattrs);
        for user in self.db.users() {
            doomed.push(ObjectKey::metadata(
                cattrs.inode,
                ids::split_user_view(cattrs.inode, user.uid),
            ));
        }
        for group in self.db.groups() {
            doomed.push(ObjectKey::metadata(
                cattrs.inode,
                ids::split_group_view(cattrs.inode, group.gid),
            ));
        }
        self.delete_many(doomed)?;
        if cattrs.kind == NodeKind::File {
            self.call(&Request::DeleteBlocks {
                inode: cattrs.inode,
                view: ids::data_view(cattrs.inode, cattrs.generation),
            })?;
        }

        self.pending.remove(path);
        self.cache.invalidate_inode(cattrs.inode);
        let _ = &pattrs;
        Ok(())
    }

    /// Renames an entry within the same directory (cross-directory moves
    /// are supported for objects the caller owns; see DESIGN.md).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        let _span = self.op_span("core.rename", || format!("from={from:?} to={to:?}"));
        let (from_parent_parts, from_name) = fspath::split_parent(from)?;
        let (to_parent_parts, to_name) = fspath::split_parent(to)?;
        fspath::validate_name(to_name)?;
        if from_parent_parts != to_parent_parts {
            return Err(CoreError::PermissionDenied {
                path: to.to_string(),
                needed: "same-directory rename (cross-directory moves: copy+unlink)",
            });
        }
        let parent_path = fspath::join(&from_parent_parts);
        let from_name = from_name.to_string();
        let to_name = to_name.to_string();

        let (ph, pbody) = self.resolve(&parent_path)?;
        let pattrs = ObjectAttrs::from_body(&pbody);
        let perm = pattrs.perm_of(self.identity.uid, &self.db);
        if !(perm.write && perm.exec) {
            return Err(CoreError::PermissionDenied {
                path: from.to_string(),
                needed: "write+exec on parent",
            });
        }
        let table = self.open_table(&ph, &pbody)?;
        if table.lookup(&from_name, pbody.dek.as_ref())?.is_none() {
            return Err(CoreError::NotFound(from.to_string()));
        }
        if table.lookup(&to_name, pbody.dek.as_ref())?.is_some() {
            return Err(CoreError::AlreadyExists(to.to_string()));
        }

        let (table_records, _) = self.rebuild_parent_tables(
            &ph,
            &pbody,
            TableEdit::Rename { from: &from_name, to: &to_name },
        )?;
        self.put_many(table_records)?;
        let _ = &pattrs;
        Ok(())
    }

    // --------------------------------------------- parent table rebuilds

    /// The table-bearing views of a directory with their materialization
    /// levels (owner always Full; exec-only degrades to Full without data
    /// encryption).
    fn dir_views_with_access(&self, attrs: &ObjectAttrs) -> Result<Vec<(ViewId, TableAccess)>> {
        let layout = self.layout();
        let mut out = Vec::new();
        for (view, perm) in layout.views(attrs) {
            let access = layout.table_access_for(view, attrs, perm)?;
            if access != TableAccess::None {
                out.push((view, access));
            }
        }
        Ok(out)
    }

    /// Applies an edit to every table replica of a directory.
    ///
    /// The writer holds all table keys (`write_teks`), fetches every view's
    /// current table, applies the edit, and re-seals each — this is exactly
    /// the per-CAP cost the paper charges mkdir/mknod with.
    #[allow(clippy::type_complexity)]
    fn rebuild_parent_tables(
        &mut self,
        ph: &NodeHandle,
        pbody: &MetadataBody,
        edit: TableEdit<'_>,
    ) -> Result<(Vec<(ObjectKey, Vec<u8>)>, Vec<(Uid, ClassTag)>)> {
        let pattrs = ObjectAttrs::from_body(pbody);
        let views = self.dir_views_with_access(&pattrs)?;

        // Table keys per view.
        let teks: HashMap<ViewId, SymKey> = pbody.write_teks.iter().cloned().collect();
        if self.encrypts_data() && teks.len() < views.len() {
            return Err(CoreError::PermissionDenied {
                path: format!("inode#{}", ph.inode),
                needed: "write TEKs (directory write)",
            });
        }

        // Names come from our own (full) view.
        let my_table = self.open_table(ph, pbody)?;
        let names: Vec<(String, NodeKind)> =
            my_table.list().into_iter().map(|(name, kind, _)| (name, kind)).collect();

        // Current replica plaintexts: cached where possible (the paper's
        // mkdir costs are sends only — the client caches the parent table),
        // fetched in one round trip otherwise.
        let keys: Vec<ObjectKey> = views
            .iter()
            .map(|(view, _)| ObjectKey::data(ph.inode, view.tag(ph.inode), 0))
            .collect();
        let mut plains: Vec<Option<Vec<u8>>> = Vec::with_capacity(views.len());
        let mut missing: Vec<(usize, ObjectKey)> = Vec::new();
        for (i, (view, _)) in views.iter().enumerate() {
            let ck = CacheKey::Table(ph.inode, view.tag(ph.inode));
            match self.cache.get(&ck) {
                Some(bytes) => plains.push(Some(bytes)),
                None => {
                    plains.push(None);
                    missing.push((i, keys[i]));
                }
            }
        }
        if !missing.is_empty() {
            let fetched = self.fetch_many(missing.iter().map(|(_, k)| *k).collect())?;
            let teks_snapshot = teks.clone();
            let encrypts_now = self.encrypts_data();
            for ((slot, _), blob) in missing.iter().zip(fetched) {
                let blob = blob.ok_or(CoreError::Corrupt("missing table replica"))?;
                let sealed = SealedObject::from_wire(&blob)
                    .map_err(|_| CoreError::Corrupt("sealed table replica"))?;
                let plain = if encrypts_now {
                    let tek =
                        teks_snapshot.get(&views[*slot].0).ok_or(CoreError::PermissionDenied {
                            path: format!("inode#{}", ph.inode),
                            needed: "TEK for replica",
                        })?;
                    tek.open(&sealed.ciphertext)?
                } else {
                    sealed.ciphertext.clone()
                };
                plains[*slot] = Some(plain);
            }
        }

        let meter = Arc::clone(&self.meter);
        let signs = self.signs();
        let encrypts = self.encrypts_data();
        let dsk = pbody.dsk.clone();
        let mut rng = self.rng.clone();
        let mut divergent_union: Vec<(Uid, ClassTag)> = Vec::new();
        let mut records = Vec::with_capacity(views.len());
        let layout = self.layout();
        let mut cache_updates: Vec<(CacheKey, Vec<u8>)> = Vec::with_capacity(views.len());

        for ((view, access), (key, plain)) in views.iter().zip(keys.iter().zip(plains)) {
            let access = *access;
            let tek = teks.get(view);
            let plain = plain.ok_or(CoreError::Corrupt("missing table replica"))?;
            let table =
                DirTable::from_wire(&plain).map_err(|_| CoreError::Corrupt("table replica"))?;

            // Recover this view's (name -> ChildRef) map.
            let mut entries: Vec<(String, ChildRef)> = Vec::with_capacity(names.len() + 1);
            match access {
                TableAccess::Full => {
                    for row in &table.rows {
                        if let Row::Full { name, child } = row {
                            entries.push((name.clone(), child.clone()));
                        }
                    }
                }
                TableAccess::NamesOnly => {
                    for row in &table.rows {
                        if let Row::Name { name, kind } = row {
                            entries.push((
                                name.clone(),
                                ChildRef {
                                    inode: 0,
                                    kind: *kind,
                                    view: [0; 16],
                                    mek: None,
                                    mvk: None,
                                    split: false,
                                },
                            ));
                        }
                    }
                }
                TableAccess::ExecOnly => {
                    let tek = tek.ok_or(CoreError::Corrupt("exec-only rebuild needs TEK"))?;
                    for (name, _) in &names {
                        if let Some(child) = table.lookup(name, Some(tek))? {
                            entries.push((name.clone(), child));
                        }
                    }
                }
                TableAccess::None => unreachable!("filtered"),
            }

            // Apply the edit.
            match &edit {
                TableEdit::Insert { name, child, child_secrets } => {
                    let (child_ref, divergent) =
                        layout.child_ref(&pattrs, *view, child, child_secrets);
                    for d in divergent {
                        if !divergent_union.contains(&d) {
                            divergent_union.push(d);
                        }
                    }
                    entries.push((name.to_string(), child_ref));
                }
                TableEdit::Remove { name } => {
                    entries.retain(|(n, _)| n != name);
                }
                TableEdit::Rename { from, to } => {
                    for (n, _) in entries.iter_mut() {
                        if n == from {
                            *n = to.to_string();
                        }
                    }
                }
            }

            // Rebuild, re-seal, re-sign.
            let mut new_plain: Vec<u8> = Vec::new();
            let rebuilt = Self::timed_crypto(&meter, || -> Result<Vec<u8>> {
                let new_table = match access {
                    TableAccess::NamesOnly => DirTable::names_only(&entries),
                    TableAccess::Full => DirTable::full(&entries),
                    TableAccess::ExecOnly => {
                        let tek = tek.ok_or(CoreError::Corrupt("exec-only rebuild needs TEK"))?;
                        DirTable::exec_only(&entries, tek, &mut rng)
                    }
                    TableAccess::None => unreachable!("filtered"),
                };
                let plain = new_table.to_wire();
                new_plain = plain.clone();
                let ciphertext = if encrypts {
                    teks.get(view).ok_or(CoreError::Corrupt("missing TEK"))?.seal(&mut rng, &plain)
                } else {
                    plain
                };
                let sealed = if signs {
                    let dsk = dsk.as_ref().ok_or(CoreError::PermissionDenied {
                        path: format!("inode#{}", ph.inode),
                        needed: "DSK (directory write)",
                    })?;
                    SealedObject::signed(ciphertext, key, dsk, &mut rng)
                } else {
                    SealedObject::unsigned(ciphertext)
                };
                Ok(sealed.to_wire())
            })?;
            cache_updates.push((CacheKey::Table(ph.inode, view.tag(ph.inode)), new_plain));
            records.push((*key, rebuilt));
        }
        let _ = layout;
        for (ck, plain) in cache_updates {
            self.cache.put(ck, plain);
        }
        self.rng.reseed(b"rebuild-tables");
        Ok((records, divergent_union))
    }

    // ----------------------------------------------------------- chmod &c

    /// Changes permissions (Figure 8 `chmod`). Owner only. Revocations
    /// re-key per the configured [`RevocationMode`].
    pub fn chmod(&mut self, path: &str, mode: Mode) -> Result<()> {
        self.update_access(path, Some(mode), None)
    }

    /// Replaces the POSIX ACL. Owner only. New named principals get split
    /// entries; removed grants trigger revocation handling.
    pub fn set_acl(&mut self, path: &str, acl: Acl) -> Result<()> {
        self.update_access(path, None, Some(acl))
    }

    fn update_access(&mut self, path: &str, mode: Option<Mode>, acl: Option<Acl>) -> Result<()> {
        let _span = self.op_span("core.update_access", || format!("path={path:?}"));
        let (h, body) = self.resolve(path)?;
        let old_attrs = ObjectAttrs::from_body(&body);
        if old_attrs.owner != self.identity.uid {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "ownership",
            });
        }
        if self.signs() && body.msk.is_none() {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "MSK (owner)",
            });
        }

        let mut new_attrs = old_attrs.clone();
        new_attrs.version += 1;
        if let Some(mode) = mode {
            new_attrs.mode = mode;
        }
        if let Some(acl) = acl {
            new_attrs.acl = acl;
        }
        self.layout().validate_perms(&new_attrs)?;

        // Revocation detection: any user whose effective permission shrinks.
        let mut revocation = false;
        for user in self.db.users() {
            let old = old_attrs.perm_of(user.uid, &self.db);
            let new = new_attrs.perm_of(user.uid, &self.db);
            if !new.covers(old) {
                revocation = true;
                break;
            }
        }

        // Rebuild secrets from the owner CAP.
        let mut secrets = self.secrets_from_owner_body(&h, &body)?;

        // New views (added ACL classes) need fresh MEKs/TEKs.
        let layout_views: Vec<ViewId> =
            self.layout().views(&new_attrs).into_iter().map(|(v, _)| v).collect();
        for view in &layout_views {
            if self.config.policy == CryptoPolicy::Sharoes && !secrets.meks.contains_key(view) {
                secrets.meks.insert(*view, SymKey::random(&mut self.rng));
            }
            if new_attrs.kind == NodeKind::Dir && !secrets.teks.contains_key(view) {
                secrets.teks.insert(*view, SymKey::random(&mut self.rng));
            }
        }

        let mut records = Vec::new();
        let mut deletes = Vec::new();
        let mut stale_slots: Vec<ObjectKey> = Vec::new();

        // Directories need their children's key material to rebuild table
        // replicas (both grants, which may create replicas for classes that
        // never had one, and revocations, which rotate TEKs).
        let children = if new_attrs.kind == NodeKind::Dir {
            Some(self.collect_dir_children(&h, &body)?)
        } else {
            None
        };

        if revocation && self.config.revocation == RevocationMode::Immediate {
            // Immediate revocation: rotate the DEK (and directory TEKs) and
            // re-encrypt content under a fresh generation.
            match new_attrs.kind {
                NodeKind::File => {
                    let content = self.read_content_for_rekey(&body)?;
                    let old_view = ids::data_view(new_attrs.inode, new_attrs.generation);
                    new_attrs.generation += 1;
                    secrets.dek = SymKey::random(&mut self.rng);
                    let meter = Arc::clone(&self.meter);
                    let mut rng = self.rng.clone();
                    let layout = self.layout();
                    records.extend(Self::timed_crypto(&meter, || {
                        layout.data_records(&new_attrs, &secrets, &content, &mut rng)
                    }));
                    self.rng.reseed(b"rekey-data");
                    deletes.push(old_view);
                    new_attrs.size = content.len() as u64;
                    new_attrs.nblocks =
                        content.len().div_ceil(self.config.block_size.max(1)) as u32;
                }
                NodeKind::Dir => {
                    // Rotate every table key; the rebuild below re-seals.
                    for view in &layout_views {
                        secrets.teks.insert(*view, SymKey::random(&mut self.rng));
                    }
                }
            }
            new_attrs.rekey_pending = false;
        } else if revocation && self.config.revocation == RevocationMode::Lazy {
            new_attrs.rekey_pending = true;
        }

        if let Some(children) = &children {
            records.extend(self.build_dir_tables(&new_attrs, &secrets, children)?);
            // Views that lost table access keep stale replicas around;
            // delete them (they are sealed under rotated-away keys anyway).
            let new_tags: Vec<[u8; 16]> = self
                .dir_views_with_access(&new_attrs)?
                .into_iter()
                .map(|(v, _)| v.tag(new_attrs.inode))
                .collect();
            for (view, _) in self.dir_views_with_access(&old_attrs)? {
                let tag = view.tag(new_attrs.inode);
                if !new_tags.contains(&tag) {
                    stale_slots.push(ObjectKey::data(new_attrs.inode, tag, 0));
                }
            }
        }

        // Rebuild all metadata replicas.
        {
            let meter = Arc::clone(&self.meter);
            let mut rng = self.rng.clone();
            let layout = self.layout();
            records.extend(Self::timed_crypto(&meter, || {
                layout.metadata_records(&new_attrs, &secrets, &mut rng)
            })?);
            self.rng.reseed(b"update-access-md");
        }

        // Split entries for ACL-named principals.
        let mut divergent: Vec<(Uid, ClassTag)> = Vec::new();
        for (uid, _) in new_attrs.acl.user_entries() {
            divergent.push((uid, ClassTag::AclUser(uid.0)));
        }
        for (gid, _) in new_attrs.acl.group_entries() {
            if let Some(group) = self.db.group(gid) {
                for &member in &group.members {
                    if new_attrs.class_of(member, &self.db) == ClassTag::AclGroup(gid.0) {
                        divergent.push((member, ClassTag::AclGroup(gid.0)));
                    }
                }
            }
        }
        if !divergent.is_empty() {
            let meter = Arc::clone(&self.meter);
            let mut rng = self.rng.clone();
            let layout = self.layout();
            records.extend(Self::timed_crypto(&meter, || {
                layout.split_records(&new_attrs, &secrets, &divergent, &mut rng)
            })?);
            self.rng.reseed(b"update-access-splits");
        }

        self.put_many(records)?;
        for view in deletes {
            self.call(&Request::DeleteBlocks { inode: new_attrs.inode, view })?;
        }
        self.delete_many(stale_slots)?;
        self.cache.invalidate_inode(new_attrs.inode);
        Ok(())
    }

    /// Everything an owner needs to rebuild a directory's table replicas:
    /// per-child attributes, per-view MEKs, and the metadata verify key.
    fn collect_dir_children(
        &mut self,
        h: &NodeHandle,
        body: &MetadataBody,
    ) -> Result<Vec<ChildInfo>> {
        let attrs = ObjectAttrs::from_body(body);
        // Owner's replica is always a full table.
        let my_table = self.open_table(h, body)?;
        let rows: Vec<(String, ChildRef)> = my_table
            .rows
            .iter()
            .filter_map(|row| match row {
                Row::Full { name, child } => Some((name.clone(), child.clone())),
                _ => None,
            })
            .collect();

        // Harvest per-view child MEKs from every existing replica: the
        // owner holds all TEKs, so all rows open.
        let old_views = self.dir_views_with_access(&attrs)?;
        let teks: HashMap<ViewId, SymKey> = body.write_teks.iter().cloned().collect();
        let keys: Vec<ObjectKey> = old_views
            .iter()
            .map(|(view, _)| ObjectKey::data(h.inode, view.tag(h.inode), 0))
            .collect();
        let blobs = self.fetch_many(keys)?;
        let mut harvested: HashMap<(u64, [u8; 16]), SymKey> = HashMap::new();
        for ((view, access), blob) in old_views.iter().zip(blobs) {
            let Some(blob) = blob else { continue };
            let Ok(sealed) = SealedObject::from_wire(&blob) else { continue };
            let plain = if self.encrypts_data() {
                let Some(tek) = teks.get(view) else { continue };
                let Ok(p) = tek.open(&sealed.ciphertext) else { continue };
                p
            } else {
                sealed.ciphertext.clone()
            };
            let Ok(table) = DirTable::from_wire(&plain) else { continue };
            match access {
                TableAccess::Full => {
                    for row in &table.rows {
                        if let Row::Full { child, .. } = row {
                            if let Some(mek) = &child.mek {
                                harvested.insert((child.inode, child.view), mek.clone());
                            }
                        }
                    }
                }
                TableAccess::ExecOnly => {
                    let Some(tek) = teks.get(view) else { continue };
                    for (name, _) in &rows {
                        if let Ok(Some(child)) = table.lookup(name, Some(tek)) {
                            if let Some(mek) = &child.mek {
                                harvested.insert((child.inode, child.view), mek.clone());
                            }
                        }
                    }
                }
                _ => {}
            }
        }

        let mut out = Vec::with_capacity(rows.len());
        for (name, child_ref) in rows {
            let ch = NodeHandle {
                inode: child_ref.inode,
                view: child_ref.view,
                mek: child_ref.mek.clone(),
                mvk: child_ref.mvk.clone(),
            };
            let cbody = self.open_metadata_at(&ch)?;
            let cattrs = ObjectAttrs::from_body(&cbody);
            let mut meks: HashMap<ViewId, SymKey> = HashMap::new();
            if Uid(cbody.owner) == self.identity.uid {
                // Owned child: its owner replica carries all MEKs.
                meks.extend(cbody.owner_meks.iter().cloned());
            }
            // Fill gaps from harvested rows.
            let candidates = self.layout().candidate_child_views(&cattrs);
            for view in candidates {
                if meks.contains_key(&view) {
                    continue;
                }
                let tag = view.tag(cattrs.inode);
                if let Some(mek) = harvested.get(&(cattrs.inode, tag)) {
                    meks.insert(view, mek.clone());
                }
            }
            out.push(ChildInfo { name, attrs: cattrs, meks, mvk: child_ref.mvk });
        }
        Ok(out)
    }

    /// Rebuilds every table replica of a directory from child information
    /// (used by chmod/set_acl, where view sets and access levels change).
    fn build_dir_tables(
        &mut self,
        new_attrs: &ObjectAttrs,
        secrets: &ObjectSecrets,
        children: &[ChildInfo],
    ) -> Result<Vec<(ObjectKey, Vec<u8>)>> {
        let views = self.dir_views_with_access(new_attrs)?;
        let meter = Arc::clone(&self.meter);
        let signs = self.signs();
        let encrypts = self.encrypts_data();
        let mut rng = self.rng.clone();
        let mut records = Vec::with_capacity(views.len());
        let layout = self.layout();

        for (view, access) in views {
            let mut entries: Vec<(String, ChildRef)> = Vec::with_capacity(children.len());
            for child in children {
                let (child_ref, _) = layout.child_ref_from_parts(
                    new_attrs,
                    view,
                    &child.attrs,
                    &child.meks,
                    child.mvk.clone(),
                );
                entries.push((child.name.clone(), child_ref));
            }
            let key = ObjectKey::data(new_attrs.inode, view.tag(new_attrs.inode), 0);
            let tek = secrets.teks.get(&view);
            let rec = Self::timed_crypto(&meter, || -> Result<Vec<u8>> {
                let table = match access {
                    TableAccess::NamesOnly => DirTable::names_only(&entries),
                    TableAccess::Full => DirTable::full(&entries),
                    TableAccess::ExecOnly => {
                        let tek = tek.ok_or(CoreError::Corrupt("missing TEK"))?;
                        DirTable::exec_only(&entries, tek, &mut rng)
                    }
                    TableAccess::None => unreachable!("filtered"),
                };
                let plain = table.to_wire();
                let ciphertext = if encrypts {
                    tek.ok_or(CoreError::Corrupt("missing TEK"))?.seal(&mut rng, &plain)
                } else {
                    plain
                };
                let sealed = match (&secrets.sig, signs) {
                    (Some(sig), true) => SealedObject::signed(ciphertext, &key, &sig.dsk, &mut rng),
                    _ => SealedObject::unsigned(ciphertext),
                };
                Ok(sealed.to_wire())
            })?;
            records.push((key, rec));
        }
        let _ = layout;
        self.rng.reseed(b"build-dir-tables");
        Ok(records)
    }

    /// Reconstructs [`ObjectSecrets`] from an owner's metadata replica.
    fn secrets_from_owner_body(
        &self,
        h: &NodeHandle,
        body: &MetadataBody,
    ) -> Result<ObjectSecrets> {
        let sig = match (self.signs(), &body.dsk, &body.dvk, &body.msk, &h.mvk) {
            (false, ..) => None,
            (true, Some(dsk), Some(dvk), Some(msk), Some(mvk)) => Some(SigPairs {
                dsk: dsk.clone(),
                dvk: dvk.clone(),
                msk: msk.clone(),
                mvk: mvk.clone(),
            }),
            _ => {
                return Err(CoreError::PermissionDenied {
                    path: format!("inode#{}", h.inode),
                    needed: "owner key material (DSK/DVK/MSK/MVK)",
                })
            }
        };
        let dek = match (body.kind, &body.dek) {
            (NodeKind::File, Some(dek)) => dek.clone(),
            // Directories keep per-view TEKs; dek below is unused. Files
            // without encryption (NO-ENC policies) take a placeholder.
            _ => SymKey([0u8; 16]),
        };
        Ok(ObjectSecrets {
            dek,
            teks: body.write_teks.iter().cloned().collect(),
            meks: body.owner_meks.iter().cloned().collect(),
            sig,
        })
    }

    /// Reads a file's full plaintext for re-keying (bypasses permission
    /// checks — the caller is the owner mid-revocation).
    fn read_content_for_rekey(&mut self, body: &MetadataBody) -> Result<Vec<u8>> {
        let manifest = self.load_manifest(body)?;
        let dview = ids::data_view(body.inode, body.generation);
        let keys: Vec<ObjectKey> =
            (0..manifest.nblocks).map(|i| ObjectKey::data(body.inode, dview, i)).collect();
        let blobs = self.fetch_many(keys.clone())?;
        let mut out = Vec::with_capacity(manifest.size as usize);
        for (key, blob) in keys.iter().zip(blobs) {
            let blob = blob.ok_or(CoreError::Corrupt("missing block during rekey"))?;
            out.extend_from_slice(&self.open_data_block(
                key,
                &blob,
                body,
                manifest.hash_of(key.block),
            )?);
        }
        out.truncate(manifest.size as usize);
        Ok(out)
    }

    /// Flushes the DEK rotation deferred by lazy revocation, then writes.
    /// Returns the new key epoch and the fresh DEK so callers (the rotation
    /// lifecycle) can escrow the key they just minted.
    fn rekey_and_write(
        &mut self,
        h: NodeHandle,
        body: MetadataBody,
        content: &[u8],
    ) -> Result<(u64, SymKey)> {
        let mut attrs = ObjectAttrs::from_body(&body);
        let mut secrets = self.secrets_from_owner_body(&h, &body)?;
        let old_view = ids::data_view(attrs.inode, attrs.generation);
        attrs.generation += 1;
        attrs.version += 1;
        attrs.rekey_pending = false;
        attrs.size = content.len() as u64;
        attrs.nblocks = content.len().div_ceil(self.config.block_size.max(1)) as u32;
        secrets.dek = SymKey::random(&mut self.rng);
        let new_dek = secrets.dek.clone();

        let mut records = Vec::new();
        {
            let meter = Arc::clone(&self.meter);
            let mut rng = self.rng.clone();
            let layout = self.layout();
            records.extend(Self::timed_crypto(&meter, || {
                layout.data_records(&attrs, &secrets, content, &mut rng)
            }));
            records.extend(Self::timed_crypto(&meter, || {
                layout.metadata_records(&attrs, &secrets, &mut rng)
            })?);
            self.rng.reseed(b"lazy-rekey");
        }
        self.put_many(records)?;
        self.call(&Request::DeleteBlocks { inode: attrs.inode, view: old_view })?;
        self.cache.invalidate_inode(attrs.inode);
        Ok((attrs.generation, new_dek))
    }

    /// Refreshes the size/nblocks attributes in this owner's metadata
    /// replicas from the current manifest (writes leave metadata untouched,
    /// per Figure 8 — this is the explicit owner-side refresh).
    pub fn fsync_metadata(&mut self, path: &str) -> Result<()> {
        let (h, body) = self.resolve(path)?;
        let mut attrs = ObjectAttrs::from_body(&body);
        if attrs.owner != self.identity.uid {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "ownership",
            });
        }
        if attrs.kind == NodeKind::File {
            let manifest = self.load_manifest(&body)?;
            attrs.size = manifest.size;
            attrs.nblocks = manifest.nblocks;
        }
        attrs.version += 1;
        let secrets = self.secrets_from_owner_body(&h, &body)?;
        let meter = Arc::clone(&self.meter);
        let mut rng = self.rng.clone();
        let layout = self.layout();
        let records =
            Self::timed_crypto(&meter, || layout.metadata_records(&attrs, &secrets, &mut rng))?;
        self.rng.reseed(b"fsync-metadata");
        self.put_many(records)?;
        self.cache.invalidate_inode(attrs.inode);
        Ok(())
    }

    // ------------------------------------- key-rotation lifecycle (§10)

    /// Loads this mount's versioned KEK chain from the SSP, generating and
    /// publishing a fresh single-version chain on first use (DESIGN.md
    /// §10). The chain lives at the superblock-space slot
    /// [`ids::kek_chain_view`], sealed under this user's public RSA key, so
    /// it is recovered in-band exactly like the superblock. Returns the
    /// current chain version. Idempotent: a chain already held in memory is
    /// kept as-is.
    pub fn load_kek_chain(&mut self) -> Result<u32> {
        if let Some(chain) = &self.kek {
            return Ok(chain.current_version());
        }
        let uid = self.identity.uid;
        let slot = ObjectKey::superblock(ids::kek_chain_view(uid));
        let chain = match self.fetch(slot)? {
            Some(blob) => KekChain::open_with(&self.identity.private, &blob)?,
            None => {
                let chain = KekChain::generate(&mut self.rng);
                let sealed = chain.seal_for(self.pki.user(uid)?, &mut self.rng)?;
                self.put_many(vec![(slot, sealed)])?;
                chain
            }
        };
        let version = chain.current_version();
        self.kek = Some(chain);
        Ok(version)
    }

    /// Rotates this mount's KEK: appends a fresh version to the chain and
    /// republishes the sealed chain at the SSP. Escrow records written
    /// after this call seal under the new version — a holder of a
    /// pre-rotation snapshot ([`KekChain::snapshot_through`]) provably
    /// cannot open them — while every old record stays readable until
    /// old versions are destroyed via [`KekChain::retire_through`].
    /// Returns the new current version.
    pub fn rotate_mount_kek(&mut self) -> Result<u32> {
        self.load_kek_chain()?;
        let mut chain = self.kek.take().expect("chain loaded above");
        let version = chain.rotate(&mut self.rng);
        let uid = self.identity.uid;
        let sealed = chain.seal_for(self.pki.user(uid)?, &mut self.rng)?;
        self.kek = Some(chain);
        self.put_many(vec![(ObjectKey::superblock(ids::kek_chain_view(uid)), sealed)])?;
        Ok(version)
    }

    /// Current mount-KEK version, if a chain has been loaded.
    pub fn kek_version(&self) -> Option<u32> {
        self.kek.as_ref().map(KekChain::current_version)
    }

    /// The loaded KEK chain. Test oracles snapshot it
    /// ([`KekChain::snapshot_through`]) to model a holder whose key
    /// material predates a rotation.
    pub fn kek_chain(&self) -> Option<&KekChain> {
        self.kek.as_ref()
    }

    /// Owner-driven key rotation for one file: mints a fresh DEK, bumps the
    /// key epoch, re-encrypts the content into the new data view, deletes
    /// the old view, and — when a KEK chain is loaded — escrows the new
    /// DEK sealed under the current KEK version. Returns the new
    /// generation. Pre-rotation readers lose the data (their cached DEK no
    /// longer even locates the blocks); escrow keeps the owner's recovery
    /// path version-gated.
    pub fn rotate_file_keys(&mut self, path: &str) -> Result<u64> {
        let (h, body) = self.resolve(path)?;
        let attrs = ObjectAttrs::from_body(&body);
        if attrs.kind != NodeKind::File {
            return Err(CoreError::IsADirectory(path.to_string()));
        }
        if attrs.owner != self.identity.uid {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "ownership (rotate)",
            });
        }
        if self.encrypts_data() && body.dek.is_none() {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "DEK (rotate)",
            });
        }
        if self.signs() && body.msk.is_none() {
            return Err(CoreError::PermissionDenied {
                path: path.to_string(),
                needed: "MSK (rotate)",
            });
        }
        let content = self.read_content_for_rekey(&body)?;
        let inode = attrs.inode;
        let (generation, dek) = self.rekey_and_write(h, body, &content)?;
        if self.kek.is_some() {
            self.escrow_dek(inode, generation, &dek)?;
        }
        Ok(generation)
    }

    /// Writes the escrow record for `(inode, generation)`: the DEK sealed
    /// under the current KEK version, stored at the data-space slot
    /// [`ids::dek_escrow_view`] with the generation as the block index.
    fn escrow_dek(&mut self, inode: u64, generation: u64, dek: &SymKey) -> Result<()> {
        let chain = self.kek.as_ref().expect("escrow requires a loaded KEK chain");
        let record = chain.seal(&mut self.rng, &dek.0);
        let key = ObjectKey::data(
            inode,
            ids::dek_escrow_view(self.identity.uid, inode),
            generation as u32,
        );
        self.put_many(vec![(key, record)])
    }

    /// Recovers the escrowed DEK for `(inode, generation)` with the loaded
    /// KEK chain. Fails with [`CoreError::TamperDetected`] when the
    /// record's sealing version is not held by the chain (rotated away or
    /// retired).
    pub fn escrowed_dek(&mut self, inode: u64, generation: u64) -> Result<SymKey> {
        let blob = self
            .fetch_escrow_record(inode, generation)?
            .ok_or(CoreError::Corrupt("missing DEK escrow record"))?;
        let chain = self.kek.as_ref().ok_or(CoreError::Corrupt("no KEK chain loaded"))?;
        let plain = chain.open(&blob)?;
        Ok(SymKey::from_slice(&plain)?)
    }

    /// Raw escrow-record fetch for `(inode, generation)` — exposed so test
    /// oracles can probe records against chain snapshots
    /// ([`KekChain::snapshot_through`]) without the client's own chain in
    /// the way.
    pub fn fetch_escrow_record(&mut self, inode: u64, generation: u64) -> Result<Option<Vec<u8>>> {
        let key = ObjectKey::data(
            inode,
            ids::dek_escrow_view(self.identity.uid, inode),
            generation as u32,
        );
        self.fetch(key)
    }
}

/// Short hex prefix of a root hash for error messages.
fn hex_prefix(hash: &[u8; 32]) -> String {
    hash[..4].iter().map(|b| format!("{b:02x}")).collect()
}

/// Per-child material collected for directory table rebuilds.
struct ChildInfo {
    name: String,
    attrs: ObjectAttrs,
    meks: HashMap<ViewId, SymKey>,
    mvk: Option<VerifyKey>,
}

/// Directory-table edits supported by `rebuild_parent_tables`.
enum TableEdit<'a> {
    /// Insert a new child row.
    Insert {
        /// Entry name.
        name: &'a str,
        /// Child attributes.
        child: &'a ObjectAttrs,
        /// Child key material.
        child_secrets: &'a ObjectSecrets,
    },
    /// Remove a row by name.
    Remove {
        /// Entry name.
        name: &'a str,
    },
    /// Rename a row.
    Rename {
        /// Old name.
        from: &'a str,
        /// New name.
        to: &'a str,
    },
}
