//! In-band group key distribution (paper §II-A).
//!
//! "The group keys are distributed to users by storing them encrypted with
//! the public keys of group members (individually). These encrypted group
//! keys are stored at the SSP. When a user alice logs into the system ...
//! she obtains her encrypted group key blocks and uses her private key to
//! decrypt and thus obtain her group keys."

use crate::error::{CoreError, Result};
use crate::ids;
use crate::keyring::Keyring;
use sharoes_crypto::{RandomSource, RsaPrivateKey};
use sharoes_fs::{Gid, Uid, UserDb};
use sharoes_net::ObjectKey;

/// Builds the group key blocks for every group membership in the directory:
/// one `(ObjectKey, blob)` per (group, member) pair.
pub fn build_group_key_blocks<R: RandomSource + ?Sized>(
    db: &UserDb,
    ring: &Keyring,
    rng: &mut R,
) -> Result<Vec<(ObjectKey, Vec<u8>)>> {
    let mut out = Vec::new();
    for group in db.groups() {
        let group_priv = ring.group_private(group.gid)?;
        let payload = group_priv.to_bytes();
        for &member in &group.members {
            let pk = ring.user_public(member)?;
            let blob = pk.encrypt_blob(rng, &payload)?;
            out.push((ObjectKey::group_key(group.gid.0 as u64, ids::group_key_view(member)), blob));
        }
    }
    Ok(out)
}

/// The SSP slot of the group key block for `(gid, member)`.
pub fn group_key_slot(gid: Gid, member: Uid) -> ObjectKey {
    ObjectKey::group_key(gid.0 as u64, ids::group_key_view(member))
}

/// Decrypts a fetched group key block with the member's private key.
pub fn open_group_key_block(private: &RsaPrivateKey, blob: &[u8]) -> Result<RsaPrivateKey> {
    let plain = private
        .decrypt_blob(blob)
        .map_err(|_| CoreError::TamperDetected("group key block decryption failed".into()))?;
    RsaPrivateKey::from_bytes(&plain).map_err(|_| CoreError::Corrupt("group key payload"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharoes_crypto::HmacDrbg;

    fn setup() -> (UserDb, Keyring, HmacDrbg) {
        let mut db = UserDb::new();
        db.add_group(Gid(10), "eng").unwrap();
        db.add_group(Gid(20), "ops").unwrap();
        db.add_user(Uid(1), "alice", Gid(10)).unwrap();
        db.add_user(Uid(2), "bob", Gid(10)).unwrap();
        db.add_user(Uid(3), "carol", Gid(20)).unwrap();
        let mut rng = HmacDrbg::from_seed_u64(42);
        let ring = Keyring::generate(&db, 512, &mut rng).unwrap();
        (db, ring, rng)
    }

    #[test]
    fn blocks_cover_all_memberships() {
        let (db, ring, mut rng) = setup();
        let blocks = build_group_key_blocks(&db, &ring, &mut rng).unwrap();
        // eng has 2 members, ops has 1.
        assert_eq!(blocks.len(), 3);
        let keys: Vec<ObjectKey> = blocks.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&group_key_slot(Gid(10), Uid(1))));
        assert!(keys.contains(&group_key_slot(Gid(10), Uid(2))));
        assert!(keys.contains(&group_key_slot(Gid(20), Uid(3))));
    }

    #[test]
    fn member_recovers_group_key_in_band() {
        let (db, ring, mut rng) = setup();
        let blocks = build_group_key_blocks(&db, &ring, &mut rng).unwrap();
        let slot = group_key_slot(Gid(10), Uid(1));
        let (_, blob) = blocks.iter().find(|(k, _)| *k == slot).unwrap();
        let alice = ring.user_private(Uid(1)).unwrap();
        let recovered = open_group_key_block(alice, blob).unwrap();
        // The recovered key must decrypt things encrypted to the group.
        let ct =
            ring.group_public(Gid(10)).unwrap().encrypt(&mut rng, b"to the eng group").unwrap();
        assert_eq!(recovered.decrypt(&ct).unwrap(), b"to the eng group");
    }

    #[test]
    fn non_member_cannot_recover() {
        let (db, ring, mut rng) = setup();
        let blocks = build_group_key_blocks(&db, &ring, &mut rng).unwrap();
        let slot = group_key_slot(Gid(10), Uid(1));
        let (_, blob) = blocks.iter().find(|(k, _)| *k == slot).unwrap();
        let carol = ring.user_private(Uid(3)).unwrap();
        assert!(open_group_key_block(carol, blob).is_err());
    }
}
