//! The migration tool (paper §IV): transitions local storage to the
//! outsourced model.
//!
//! "This component is responsible for the initial setup and migration of
//! data from local storage to the outsourced model. It can perform more
//! efficient bulk data transfers ... and create the cryptographic
//! infrastructure, if required."
//!
//! The migrator walks a `LocalFs`, materializes every object through the
//! [`Layout`] engine, and ships records to the SSP in batched `PutMany`
//! messages. It also writes the per-user superblocks and group key blocks
//! that make key management fully in-band afterwards.

use crate::cap::downgrade;
use crate::error::{CoreError, Result};
use crate::groups::build_group_key_blocks;
use crate::keypool::SigKeyPool;
use crate::keyring::Keyring;
use crate::params::ClientConfig;
use crate::scheme::{Layout, ObjectAttrs, ObjectSecrets};
use sharoes_crypto::RandomSource;
use sharoes_fs::{InodeId, LocalFs, Mode, NodeKind};
use sharoes_net::{ObjectKey, Request, Response, Transport};
use std::collections::HashMap;

/// Records per `PutMany` batch during bulk transfer.
const BATCH: usize = 64;

/// What happened during a migration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Filesystem objects migrated.
    pub objects: usize,
    /// SSP records written.
    pub records: usize,
    /// Total record bytes shipped.
    pub bytes: u64,
    /// Split-point entries created (Scheme-2).
    pub split_entries: usize,
    /// Superblocks written (one per user).
    pub superblocks: usize,
    /// Group key blocks written.
    pub group_key_blocks: usize,
    /// Objects whose permissions were downgraded to a representable mode.
    pub downgraded: usize,
}

/// The migration tool.
pub struct Migrator<'a> {
    /// Source filesystem.
    pub fs: &'a LocalFs,
    /// Target configuration (scheme, policy, key sizes).
    pub config: &'a ClientConfig,
    /// Enterprise identity keys.
    pub ring: &'a Keyring,
    /// Pool of pre-generated signing pairs.
    pub pool: &'a SigKeyPool,
    /// Downgrade cryptographically unrepresentable permissions instead of
    /// failing (`-wx` directories, write-only/exec-only files).
    pub downgrade_unsupported: bool,
}

impl<'a> Migrator<'a> {
    /// Runs the migration. Per-object secrets are *not* retained — all key
    /// distribution is in-band afterwards.
    pub fn migrate<T: Transport + ?Sized, R: RandomSource + ?Sized>(
        &self,
        transport: &mut T,
        rng: &mut R,
    ) -> Result<MigrationReport> {
        let pki = self.ring.public_directory();
        let layout = Layout {
            scheme: self.config.effective_scheme(),
            policy: self.config.policy,
            block_size: self.config.block_size,
            db: self.fs.users(),
            pki: &pki,
        };
        let mut report = MigrationReport::default();

        // Pass 1: attributes (with optional downgrade) and secrets per inode.
        let walked = self.fs.walk();
        let mut attrs_by_inode: HashMap<u64, ObjectAttrs> = HashMap::new();
        let mut secrets_by_inode: HashMap<u64, ObjectSecrets> = HashMap::new();
        for (_path, attr) in &walked {
            let is_dir = attr.kind == NodeKind::Dir;
            let mut mode = attr.mode;
            let softened = Mode {
                owner: downgrade(mode.owner, is_dir),
                group: downgrade(mode.group, is_dir),
                other: downgrade(mode.other, is_dir),
            };
            if softened != mode && self.downgrade_unsupported {
                report.downgraded += 1;
                mode = softened;
            }
            // else: validate_perms below reports the precise failure.
            let mut attrs = ObjectAttrs::new(attr.inode.0, attr.kind, attr.owner, attr.group, mode);
            attrs.acl = attr.acl.clone();
            if self.downgrade_unsupported {
                // ACL entries may also carry unrepresentable grants.
                let mut acl = attrs.acl.clone();
                for (uid, perm) in attrs.acl.user_entries() {
                    let d = downgrade(perm, is_dir);
                    if d != perm {
                        acl.set_user(uid, d);
                        report.downgraded += 1;
                    }
                }
                for (gid, perm) in attrs.acl.group_entries() {
                    let d = downgrade(perm, is_dir);
                    if d != perm {
                        acl.set_group(gid, d);
                        report.downgraded += 1;
                    }
                }
                attrs.acl = acl;
            }
            layout.validate_perms(&attrs)?;
            attrs.size = attr.size;
            attrs.version = attr.version;
            let secrets = layout.generate_secrets(&attrs, self.pool, rng);
            attrs_by_inode.insert(attr.inode.0, attrs);
            secrets_by_inode.insert(attr.inode.0, secrets);
        }

        // Pass 2: build records.
        let mut records: Vec<(ObjectKey, Vec<u8>)> = Vec::new();
        for (_path, attr) in &walked {
            let inode = attr.inode.0;
            report.objects += 1;

            match attr.kind {
                NodeKind::File => {
                    let content = self
                        .fs
                        .file_contents(InodeId(inode))
                        .ok_or(CoreError::Corrupt("walked file vanished"))?;
                    {
                        let attrs = attrs_by_inode.get_mut(&inode).expect("pass-1 attrs");
                        attrs.size = content.len() as u64;
                        attrs.nblocks =
                            content.len().div_ceil(self.config.block_size.max(1)) as u32;
                    }
                    let attrs = &attrs_by_inode[&inode];
                    let secrets = &secrets_by_inode[&inode];
                    records.extend(layout.metadata_records(attrs, secrets, rng)?);
                    records.extend(layout.data_records(attrs, secrets, content, rng));
                }
                NodeKind::Dir => {
                    let children = self
                        .fs
                        .dir_entries(InodeId(inode))
                        .ok_or(CoreError::Corrupt("walked dir vanished"))?;
                    {
                        let attrs = attrs_by_inode.get_mut(&inode).expect("pass-1 attrs");
                        attrs.size = children.len() as u64;
                    }
                    let entry_refs: Vec<(String, &ObjectAttrs, &ObjectSecrets)> = children
                        .iter()
                        .map(|(name, child_ino)| {
                            (
                                name.clone(),
                                &attrs_by_inode[&child_ino.0],
                                &secrets_by_inode[&child_ino.0],
                            )
                        })
                        .collect();
                    let attrs = &attrs_by_inode[&inode];
                    let secrets = &secrets_by_inode[&inode];
                    records.extend(layout.metadata_records(attrs, secrets, rng)?);
                    let (tables, splits) =
                        layout.table_records(attrs, secrets, &entry_refs, rng)?;
                    records.extend(tables);
                    for (child_inode, divergent) in splits {
                        let child_attrs = &attrs_by_inode[&child_inode];
                        let child_secrets = &secrets_by_inode[&child_inode];
                        let split_records =
                            layout.split_records(child_attrs, child_secrets, &divergent, rng)?;
                        report.split_entries += split_records.len();
                        records.extend(split_records);
                    }
                }
            }
        }

        // Pass 3: in-band key distribution — superblocks and group keys.
        let root_attrs = &attrs_by_inode[&self.fs.root().0];
        let root_secrets = &secrets_by_inode[&self.fs.root().0];
        for user in self.fs.users().users() {
            records.push(layout.superblock_record(user.uid, root_attrs, root_secrets, rng)?);
            report.superblocks += 1;
        }
        let gkb = build_group_key_blocks(self.fs.users(), self.ring, rng)?;
        report.group_key_blocks = gkb.len();
        records.extend(gkb);

        // Ship in batches (the paper's "more efficient bulk data transfers").
        report.records = records.len();
        report.bytes = records.iter().map(|(_, v)| v.len() as u64).sum();
        for chunk in records.chunks(BATCH) {
            match transport.call(&Request::PutMany { items: chunk.to_vec() })? {
                Response::Ok => {}
                Response::Error(msg) => {
                    return Err(CoreError::Net(sharoes_net::NetError::Remote(msg)))
                }
                _ => return Err(CoreError::Corrupt("unexpected migration response")),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CryptoParams, CryptoPolicy, Scheme};
    use sharoes_crypto::HmacDrbg;
    use sharoes_fs::treegen::{generate, TreeSpec};
    use sharoes_net::InMemoryTransport;
    use sharoes_ssp::SspServer;
    use std::sync::Arc;

    fn run_migration(policy: CryptoPolicy, scheme: Scheme) -> (MigrationReport, Arc<SspServer>) {
        run_migration_with_users(policy, scheme, 2)
    }

    fn run_migration_with_users(
        policy: CryptoPolicy,
        scheme: Scheme,
        users: usize,
    ) -> (MigrationReport, Arc<SspServer>) {
        let (fs, _) =
            generate(&TreeSpec { users, dirs_per_user: 2, files_per_dir: 1, ..Default::default() })
                .unwrap();
        let mut rng = HmacDrbg::from_seed_u64(1);
        let ring = Keyring::generate(fs.users(), 512, &mut rng).unwrap();
        let config = ClientConfig::test_with(policy, scheme);
        let pool = SigKeyPool::new(CryptoParams::test());
        let server = SspServer::new().into_shared();
        let mut transport = InMemoryTransport::new(Arc::clone(&server) as _);
        let migrator = Migrator {
            fs: &fs,
            config: &config,
            ring: &ring,
            pool: &pool,
            downgrade_unsupported: true,
        };
        let report = migrator.migrate(&mut transport, &mut rng).unwrap();
        (report, server)
    }

    #[test]
    fn sharoes_scheme2_migration_populates_ssp() {
        let (report, server) = run_migration(CryptoPolicy::Sharoes, Scheme::SharedCaps);
        assert!(report.objects > 0);
        assert!(report.records > 0);
        assert_eq!(report.superblocks, 3); // root + 2 users
        assert!(report.group_key_blocks >= 3);
        assert_eq!(server.store().object_count() as usize, report.records);
        assert_eq!(server.store().byte_count(), report.bytes);
    }

    #[test]
    fn scheme1_stores_more_than_scheme2() {
        // Scheme-1 scales with the user count, Scheme-2 with the (constant)
        // number of permission classes.
        let (s2, _) = run_migration_with_users(CryptoPolicy::Sharoes, Scheme::SharedCaps, 6);
        let (s1, _) = run_migration_with_users(CryptoPolicy::Sharoes, Scheme::PerUser, 6);
        assert!(
            s1.records > s2.records,
            "per-user replication should write more records ({} vs {})",
            s1.records,
            s2.records
        );
        assert!(s1.bytes > s2.bytes);
    }

    #[test]
    fn all_policies_migrate() {
        for policy in [
            CryptoPolicy::NoEncMdD,
            CryptoPolicy::NoEncMd,
            CryptoPolicy::Sharoes,
            CryptoPolicy::Public,
            CryptoPolicy::PubOpt,
        ] {
            let (report, _) = run_migration(policy, Scheme::SharedCaps);
            assert!(report.records > 0, "{policy:?}");
        }
    }
}
