//! View-tag derivation: how objects are addressed at the SSP.
//!
//! The SSP indexes objects "by the inode numbers and either hash of
//! user/group ID (for Scheme-1) or CAP ID (Scheme-2)" (paper §IV). All tags
//! are 16-byte truncated SHA-256 over domain-separated inputs, so the SSP
//! learns nothing about principals or permissions from the key structure.

use sharoes_crypto::Sha256;
use sharoes_fs::{Gid, Uid};
use sharoes_net::{Cursor, NetError, WireRead, WireWrite};

/// Which permission class a Scheme-2 CAP instance belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ClassTag {
    /// The object owner.
    Owner,
    /// The owning group (minus the owner).
    Group,
    /// Everyone else.
    Other,
    /// A POSIX-ACL named user.
    AclUser(u32),
    /// A POSIX-ACL named group.
    AclGroup(u32),
}

impl ClassTag {
    fn domain_bytes(self) -> Vec<u8> {
        match self {
            ClassTag::Owner => b"owner".to_vec(),
            ClassTag::Group => b"group".to_vec(),
            ClassTag::Other => b"other".to_vec(),
            ClassTag::AclUser(u) => format!("acl-u:{u}").into_bytes(),
            ClassTag::AclGroup(g) => format!("acl-g:{g}").into_bytes(),
        }
    }
}

impl WireWrite for ClassTag {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            ClassTag::Owner => 0u8.write(out),
            ClassTag::Group => 1u8.write(out),
            ClassTag::Other => 2u8.write(out),
            ClassTag::AclUser(u) => {
                3u8.write(out);
                u.write(out);
            }
            ClassTag::AclGroup(g) => {
                4u8.write(out);
                g.write(out);
            }
        }
    }
}

impl WireRead for ClassTag {
    fn read(r: &mut Cursor<'_>) -> std::result::Result<Self, NetError> {
        Ok(match u8::read(r)? {
            0 => ClassTag::Owner,
            1 => ClassTag::Group,
            2 => ClassTag::Other,
            3 => ClassTag::AclUser(u32::read(r)?),
            4 => ClassTag::AclGroup(u32::read(r)?),
            _ => return Err(NetError::Codec("unknown class tag")),
        })
    }
}

fn h16(parts: &[&[u8]]) -> [u8; 16] {
    use sharoes_crypto::Digest;
    let mut h = Sha256::new();
    for p in parts {
        h.update(&(p.len() as u32).to_be_bytes());
        h.update(p);
    }
    let digest = h.finalize_vec();
    let mut out = [0u8; 16];
    out.copy_from_slice(&digest[..16]);
    out
}

/// Scheme-1 view: the per-user tree of `uid`.
pub fn user_view(uid: Uid) -> [u8; 16] {
    h16(&[b"sharoes:view:user", &uid.0.to_be_bytes()])
}

/// Scheme-2 view: the CAP instance of `(inode, class)`.
pub fn cap_view(inode: u64, class: ClassTag) -> [u8; 16] {
    h16(&[b"sharoes:view:cap", &inode.to_be_bytes(), &class.domain_bytes()])
}

/// View under which file data blocks are stored for key epoch `generation`.
///
/// Rotating the DEK (revocation) moves data to a fresh view so stale cached
/// keys cannot even locate the re-encrypted blocks.
pub fn data_view(inode: u64, generation: u64) -> [u8; 16] {
    h16(&[b"sharoes:view:data", &inode.to_be_bytes(), &generation.to_be_bytes()])
}

/// Per-user superblock slot (§III-C).
pub fn superblock_view(uid: Uid) -> [u8; 16] {
    h16(&[b"sharoes:view:superblock", &uid.0.to_be_bytes()])
}

/// Group-key block slot for `(gid, member uid)` (§II-A).
pub fn group_key_view(uid: Uid) -> [u8; 16] {
    h16(&[b"sharoes:view:groupkey", &uid.0.to_be_bytes()])
}

/// Per-mount versioned KEK-chain slot for `uid` (rotation lifecycle,
/// DESIGN.md §10). Lives in the superblock key space: like the superblock,
/// the chain is sealed under the user's public key and recovered in-band.
pub fn kek_chain_view(uid: Uid) -> [u8; 16] {
    h16(&[b"sharoes:view:kek-chain", &uid.0.to_be_bytes()])
}

/// DEK escrow slot for `(owner uid, inode)`. Escrow records are stored as
/// data-space objects whose block index carries the key generation, sealed
/// under the owner's current mount-KEK version.
pub fn dek_escrow_view(uid: Uid, inode: u64) -> [u8; 16] {
    h16(&[b"sharoes:view:dek-escrow", &uid.0.to_be_bytes(), &inode.to_be_bytes()])
}

/// Scheme-2 split-point entry addressed to a single user (§III-D.2).
pub fn split_user_view(inode: u64, uid: Uid) -> [u8; 16] {
    h16(&[b"sharoes:view:split-user", &inode.to_be_bytes(), &uid.0.to_be_bytes()])
}

/// Scheme-2 split-point entry addressed to a whole group.
pub fn split_group_view(inode: u64, gid: Gid) -> [u8; 16] {
    h16(&[b"sharoes:view:split-group", &inode.to_be_bytes(), &gid.0.to_be_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_are_deterministic_and_distinct() {
        assert_eq!(user_view(Uid(1)), user_view(Uid(1)));
        assert_ne!(user_view(Uid(1)), user_view(Uid(2)));
        assert_ne!(user_view(Uid(1)), superblock_view(Uid(1)));
        assert_ne!(kek_chain_view(Uid(1)), superblock_view(Uid(1)));
        assert_ne!(dek_escrow_view(Uid(1), 7), data_view(7, 0));
        assert_ne!(dek_escrow_view(Uid(1), 7), dek_escrow_view(Uid(2), 7));
        assert_ne!(cap_view(1, ClassTag::Owner), cap_view(1, ClassTag::Group));
        assert_ne!(cap_view(1, ClassTag::Owner), cap_view(2, ClassTag::Owner));
        assert_ne!(data_view(1, 0), data_view(1, 1));
        assert_ne!(split_user_view(1, Uid(1)), split_group_view(1, Gid(1)));
    }

    #[test]
    fn acl_classes_distinct_per_principal() {
        assert_ne!(cap_view(1, ClassTag::AclUser(5)), cap_view(1, ClassTag::AclUser(6)));
        assert_ne!(cap_view(1, ClassTag::AclUser(5)), cap_view(1, ClassTag::AclGroup(5)));
    }

    #[test]
    fn class_tag_wire_roundtrip() {
        for tag in [
            ClassTag::Owner,
            ClassTag::Group,
            ClassTag::Other,
            ClassTag::AclUser(42),
            ClassTag::AclGroup(7),
        ] {
            assert_eq!(ClassTag::from_wire(&tag.to_wire()).unwrap(), tag);
        }
        assert!(ClassTag::from_wire(&[9]).is_err());
    }

    #[test]
    fn domain_separation_resists_concatenation_tricks() {
        // ("ab", "c") and ("a", "bc") must hash differently: lengths are
        // mixed into the hash.
        assert_ne!(h16(&[b"ab", b"c"]), h16(&[b"a", b"bc"]));
    }
}
