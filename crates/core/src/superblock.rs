//! The per-user encrypted superblock (paper §III-C).
//!
//! "For each authorized user U, we store the superblock encrypted with the
//! public key of U and store it at the SSP. ... no out-of-band distribution
//! is required and only a one-time public key cryptographic operation is
//! required (at mount time)."

use crate::error::{CoreError, Result};
use sharoes_crypto::{RandomSource, RsaPrivateKey, RsaPublicKey, SymKey, VerifyKey};
use sharoes_net::{Cursor, NetError, WireRead, WireWrite};

/// The decrypted superblock contents for one user.
#[derive(Clone, Debug)]
pub struct Superblock {
    /// Namespace-root inode number.
    pub root_inode: u64,
    /// View tag of this user's root metadata replica.
    pub root_view: [u8; 16],
    /// MEK for that replica (None for baseline policies).
    pub root_mek: Option<SymKey>,
    /// MVK for that replica (None when the policy doesn't sign).
    pub root_mvk: Option<VerifyKey>,
    /// Filesystem block size.
    pub block_size: u32,
    /// Scheme tag: 0 = per-user, 1 = shared CAPs.
    pub scheme_tag: u8,
}

impl WireWrite for Superblock {
    fn write(&self, out: &mut Vec<u8>) {
        self.root_inode.write(out);
        self.root_view.write(out);
        match &self.root_mek {
            None => 0u8.write(out),
            Some(k) => {
                1u8.write(out);
                k.0.write(out);
            }
        }
        self.root_mvk.as_ref().map(|k| k.to_bytes()).write(out);
        self.block_size.write(out);
        self.scheme_tag.write(out);
    }
}

impl WireRead for Superblock {
    fn read(r: &mut Cursor<'_>) -> std::result::Result<Self, NetError> {
        Ok(Superblock {
            root_inode: u64::read(r)?,
            root_view: <[u8; 16]>::read(r)?,
            root_mek: match u8::read(r)? {
                0 => None,
                1 => Some(SymKey(<[u8; 16]>::read(r)?)),
                _ => return Err(NetError::Codec("invalid mek option")),
            },
            root_mvk: Option::<Vec<u8>>::read(r)?
                .map(|b| VerifyKey::from_bytes(&b))
                .transpose()
                .map_err(|_| NetError::Codec("bad root mvk"))?,
            block_size: u32::read(r)?,
            scheme_tag: u8::read(r)?,
        })
    }
}

impl Superblock {
    /// Seals this superblock for a user with their public key.
    pub fn seal_for<R: RandomSource + ?Sized>(
        &self,
        pk: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<Vec<u8>> {
        Ok(pk.encrypt_blob(rng, &self.to_wire())?)
    }

    /// Opens a sealed superblock with the mounting user's private key.
    pub fn open_with(private: &RsaPrivateKey, blob: &[u8]) -> Result<Superblock> {
        let plain = private
            .decrypt_blob(blob)
            .map_err(|_| CoreError::TamperDetected("superblock decryption failed".into()))?;
        Superblock::from_wire(&plain).map_err(|_| CoreError::Corrupt("superblock body"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharoes_crypto::HmacDrbg;

    #[test]
    fn seal_open_roundtrip() {
        let mut rng = HmacDrbg::from_seed_u64(1);
        let rsa = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let sb = Superblock {
            root_inode: 1,
            root_view: [3; 16],
            root_mek: Some(SymKey([5; 16])),
            root_mvk: None,
            block_size: 4096,
            scheme_tag: 1,
        };
        let sealed = sb.seal_for(rsa.public_key(), &mut rng).unwrap();
        let opened = Superblock::open_with(&rsa, &sealed).unwrap();
        assert_eq!(opened.root_inode, 1);
        assert_eq!(opened.root_view, [3; 16]);
        assert_eq!(opened.root_mek, Some(SymKey([5; 16])));
        assert_eq!(opened.block_size, 4096);
        assert_eq!(opened.scheme_tag, 1);
    }

    #[test]
    fn wrong_user_cannot_open() {
        let mut rng = HmacDrbg::from_seed_u64(2);
        let alice = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let bob = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let sb = Superblock {
            root_inode: 1,
            root_view: [0; 16],
            root_mek: None,
            root_mvk: None,
            block_size: 4096,
            scheme_tag: 0,
        };
        let sealed = sb.seal_for(alice.public_key(), &mut rng).unwrap();
        assert!(Superblock::open_with(&bob, &sealed).is_err());
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(Superblock::from_wire(&[1, 2]).is_err());
    }
}
