//! Client-side plaintext cache with byte-capacity LRU eviction.
//!
//! "The size of the cache influences the amount of cryptographic overheads,
//! since for every metadata or data miss, encrypted data is obtained from
//! the SSP and it is decrypted again" (§V-B). The Postmark figure sweeps
//! this capacity as a percentage of the workload footprint.

use sharoes_obs::Counter;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Process-wide mirrors of [`CacheStats`] for the metrics exposition.
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: sharoes_obs::counter("core_cache_hits_total"),
        misses: sharoes_obs::counter("core_cache_misses_total"),
        evictions: sharoes_obs::counter("core_cache_evictions_total"),
    })
}

/// What a cache slot holds.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CacheKey {
    /// A decrypted metadata body, by `(inode, view)`.
    Meta(u64, [u8; 16]),
    /// A decrypted directory table, by `(inode, view)`.
    Table(u64, [u8; 16]),
    /// A decrypted data block, by `(inode, generation, block)`.
    Block(u64, u64, u32),
    /// A decrypted manifest, by `(inode, generation)`.
    Manifest(u64, u64),
}

struct Slot {
    value: Vec<u8>,
    /// LRU clock stamp.
    stamp: u64,
    /// Dirty slots are write-back data not yet flushed.
    dirty: bool,
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Values evicted to respect the capacity.
    pub evictions: u64,
}

/// Byte-bounded LRU cache of decrypted values.
pub struct ClientCache {
    slots: HashMap<CacheKey, Slot>,
    capacity: Option<u64>,
    bytes: u64,
    clock: u64,
    stats: CacheStats,
}

impl ClientCache {
    /// A cache holding at most `capacity` bytes (`None` = unbounded).
    pub fn new(capacity: Option<u64>) -> Self {
        ClientCache {
            slots: HashMap::new(),
            capacity,
            bytes: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up a value, refreshing its recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<Vec<u8>> {
        self.clock += 1;
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.stamp = self.clock;
                self.stats.hits += 1;
                cache_metrics().hits.inc();
                Some(slot.value.clone())
            }
            None => {
                self.stats.misses += 1;
                cache_metrics().misses.inc();
                None
            }
        }
    }

    /// Peeks without counting a hit/miss or refreshing recency.
    pub fn peek(&self, key: &CacheKey) -> Option<&Vec<u8>> {
        self.slots.get(key).map(|s| &s.value)
    }

    /// Inserts (or replaces) a clean value.
    pub fn put(&mut self, key: CacheKey, value: Vec<u8>) {
        self.insert(key, value, false);
    }

    /// Inserts (or replaces) a dirty value (write-back data).
    pub fn put_dirty(&mut self, key: CacheKey, value: Vec<u8>) {
        self.insert(key, value, true);
    }

    fn insert(&mut self, key: CacheKey, value: Vec<u8>, dirty: bool) {
        self.clock += 1;
        let new_len = value.len() as u64;
        if let Some(old) = self.slots.remove(&key) {
            self.bytes -= old.value.len() as u64;
        }
        // A single over-capacity value is still cached (then evicted first
        // on the next insert); capacity bounds steady-state usage.
        self.slots.insert(key, Slot { value, stamp: self.clock, dirty });
        self.bytes += new_len;
        self.evict_to_capacity();
    }

    fn evict_to_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.bytes > cap && self.slots.len() > 1 {
            // Evict the least-recently-used clean slot; dirty slots only if
            // no clean slot remains (caller must flush regularly).
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| !s.dirty)
                .min_by_key(|(_, s)| s.stamp)
                .or_else(|| self.slots.iter().min_by_key(|(_, s)| s.stamp))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(slot) = self.slots.remove(&k) {
                        self.bytes -= slot.value.len() as u64;
                        self.stats.evictions += 1;
                        cache_metrics().evictions.inc();
                    }
                }
                None => break,
            }
        }
    }

    /// Removes one entry.
    pub fn invalidate(&mut self, key: &CacheKey) {
        if let Some(slot) = self.slots.remove(key) {
            self.bytes -= slot.value.len() as u64;
        }
    }

    /// Removes all entries for an inode (metadata change / revocation).
    pub fn invalidate_inode(&mut self, inode: u64) {
        let doomed: Vec<CacheKey> = self
            .slots
            .keys()
            .filter(|k| match k {
                CacheKey::Meta(i, _)
                | CacheKey::Table(i, _)
                | CacheKey::Block(i, _, _)
                | CacheKey::Manifest(i, _) => *i == inode,
            })
            .cloned()
            .collect();
        for k in doomed {
            self.invalidate(&k);
        }
    }

    /// Drains all dirty entries (for flush-on-close), leaving them clean.
    pub fn take_dirty(&mut self) -> Vec<(CacheKey, Vec<u8>)> {
        let mut out = Vec::new();
        for (key, slot) in self.slots.iter_mut() {
            if slot.dirty {
                slot.dirty = false;
                out.push((key.clone(), slot.value.clone()));
            }
        }
        out
    }

    /// Dirty entries for one inode.
    pub fn dirty_for(&self, inode: u64) -> Vec<(CacheKey, Vec<u8>)> {
        self.slots
            .iter()
            .filter(|(k, s)| {
                s.dirty
                    && match k {
                        CacheKey::Block(i, _, _) | CacheKey::Manifest(i, _) => *i == inode,
                        _ => false,
                    }
            })
            .map(|(k, s)| (k.clone(), s.value.clone()))
            .collect()
    }

    /// Marks one inode's dirty entries clean (after a successful flush).
    pub fn mark_clean(&mut self, inode: u64) {
        for (key, slot) in self.slots.iter_mut() {
            let matches = match key {
                CacheKey::Block(i, _, _) | CacheKey::Manifest(i, _) => *i == inode,
                _ => false,
            };
            if matches {
                slot.dirty = false;
            }
        }
    }

    /// True if any dirty entry exists.
    pub fn has_dirty(&self) -> bool {
        self.slots.values().any(|s| s.dirty)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently cached.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drops everything (remount).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey::Block(i, 0, 0)
    }

    #[test]
    fn get_put_and_stats() {
        let mut c = ClientCache::new(None);
        assert!(c.get(&key(1)).is_none());
        c.put(key(1), vec![1, 2, 3]);
        assert_eq!(c.get(&key(1)).unwrap(), vec![1, 2, 3]);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(c.bytes(), 3);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut c = ClientCache::new(Some(10));
        c.put(key(1), vec![0; 4]);
        c.put(key(2), vec![0; 4]);
        // Touch 1 so 2 becomes LRU.
        c.get(&key(1));
        c.put(key(3), vec![0; 4]);
        assert!(c.bytes() <= 10);
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(2)).is_none(), "LRU entry should be evicted");
        assert!(c.peek(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = ClientCache::new(Some(100));
        c.put(key(1), vec![0; 50]);
        c.put(key(1), vec![0; 10]);
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dirty_entries_survive_eviction_pressure() {
        let mut c = ClientCache::new(Some(10));
        c.put_dirty(key(1), vec![0; 8]);
        c.put(key(2), vec![0; 8]);
        // The clean entry should be evicted before the dirty one.
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(2)).is_none());
        assert!(c.has_dirty());
        let dirty = c.take_dirty();
        assert_eq!(dirty.len(), 1);
        assert!(!c.has_dirty());
    }

    #[test]
    fn invalidate_inode_clears_related() {
        let mut c = ClientCache::new(None);
        c.put(CacheKey::Meta(5, [0; 16]), vec![1]);
        c.put(CacheKey::Table(5, [0; 16]), vec![2]);
        c.put(CacheKey::Block(5, 0, 0), vec![3]);
        c.put(CacheKey::Block(6, 0, 0), vec![4]);
        c.invalidate_inode(5);
        assert_eq!(c.len(), 1);
        assert!(c.peek(&CacheKey::Block(6, 0, 0)).is_some());
    }

    #[test]
    fn dirty_flush_cycle() {
        let mut c = ClientCache::new(None);
        c.put_dirty(CacheKey::Block(7, 0, 0), vec![1]);
        c.put_dirty(CacheKey::Manifest(7, 0), vec![2]);
        c.put_dirty(CacheKey::Block(8, 0, 0), vec![3]);
        assert_eq!(c.dirty_for(7).len(), 2);
        c.mark_clean(7);
        assert_eq!(c.dirty_for(7).len(), 0);
        assert!(c.has_dirty(), "inode 8 still dirty");
    }

    #[test]
    fn clear_resets() {
        let mut c = ClientCache::new(None);
        c.put(key(1), vec![0; 10]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }
}
