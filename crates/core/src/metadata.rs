//! Metadata objects: layout, wire codec, sealing, and signing.
//!
//! A metadata object (paper Figure 2) carries the traditional attributes
//! plus the key fields that make metadata "not only point to the data block
//! but also provide knowledge (keys) to appropriately read/write to that
//! data block". Field *presence* is per-CAP: a replica for a read-only class
//! simply does not contain the DSK.

use crate::error::{CoreError, Result};
use crate::ids::ClassTag;
use sharoes_crypto::{
    HmacDrbg, RandomSource, RsaPrivateKey, RsaPublicKey, SigningKey, SymKey, VerifyKey,
};
use sharoes_fs::{NodeKind, Uid};
use sharoes_net::{Cursor, NetError, ObjectKey, WireRead, WireWrite};

/// Identifies which replica view a principal follows.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ViewId {
    /// Scheme-1 (and all baselines): the per-user tree of `uid`.
    User(u32),
    /// Scheme-2: a shared CAP instance.
    Class(ClassTag),
}

impl ViewId {
    /// The 16-byte SSP view tag for this view of `inode`.
    pub fn tag(&self, inode: u64) -> [u8; 16] {
        match self {
            ViewId::User(uid) => crate::ids::user_view(Uid(*uid)),
            ViewId::Class(class) => crate::ids::cap_view(inode, *class),
        }
    }
}

impl WireWrite for ViewId {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            ViewId::User(u) => {
                0u8.write(out);
                u.write(out);
            }
            ViewId::Class(c) => {
                1u8.write(out);
                c.write(out);
            }
        }
    }
}

impl WireRead for ViewId {
    fn read(r: &mut Cursor<'_>) -> std::result::Result<Self, NetError> {
        Ok(match u8::read(r)? {
            0 => ViewId::User(u32::read(r)?),
            1 => ViewId::Class(ClassTag::read(r)?),
            _ => return Err(NetError::Codec("unknown view id tag")),
        })
    }
}

/// One ACL entry as carried inside metadata (plaintext attributes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AclEntryWire {
    /// True for a named-group entry.
    pub is_group: bool,
    /// uid or gid.
    pub id: u32,
    /// rwx bits (0..=7).
    pub bits: u8,
}

impl WireWrite for AclEntryWire {
    fn write(&self, out: &mut Vec<u8>) {
        self.is_group.write(out);
        self.id.write(out);
        self.bits.write(out);
    }
}

impl WireRead for AclEntryWire {
    fn read(r: &mut Cursor<'_>) -> std::result::Result<Self, NetError> {
        Ok(AclEntryWire { is_group: bool::read(r)?, id: u32::read(r)?, bits: u8::read(r)? })
    }
}

/// The plaintext content of one metadata replica.
#[derive(Clone, Debug)]
pub struct MetadataBody {
    /// Inode number.
    pub inode: u64,
    /// File or directory.
    pub kind: NodeKind,
    /// Owner uid.
    pub owner: u32,
    /// Owning group gid.
    pub group: u32,
    /// Mode bits (octal encoding).
    pub mode: u32,
    /// File size in bytes (directory: entry count).
    pub size: u64,
    /// Number of data blocks.
    pub nblocks: u32,
    /// Key epoch; bumped on revocation so data moves to a fresh view.
    pub generation: u64,
    /// Monotonic metadata version, bumped on every owner metadata rewrite.
    /// Clients remember the highest version seen per replica and flag any
    /// regression as SSP rollback (session-level freshness; full fork
    /// consistency is SUNDR's job, paper §VI).
    pub version: u64,
    /// Lazy-revocation marker: access was revoked but keys not yet rotated;
    /// the next owner write must rotate the DEK (§IV-A.1).
    pub rekey_pending: bool,
    /// ACL entries (attributes; the cryptographic effect lives in CAPs).
    pub acl: Vec<AclEntryWire>,
    /// DEK: data encryption key (file content / this class's table replica).
    pub dek: Option<SymKey>,
    /// DVK: data verification key.
    pub dvk: Option<VerifyKey>,
    /// DSK: data signing key (writers only).
    pub dsk: Option<SigningKey>,
    /// MSK: metadata signing key (owners only).
    pub msk: Option<SigningKey>,
    /// For writable directory CAPs: the table keys of *all* replicas, so a
    /// writer can update every CAP's view on mkdir/create/unlink/rename
    /// (paper Figure 8: "\[*\] per required CAP").
    pub write_teks: Vec<(ViewId, SymKey)>,
    /// For owner CAPs under SHAROES: the MEKs of every replica, so the owner
    /// can rebuild all views on chmod/set_acl without touching the parent.
    pub owner_meks: Vec<(ViewId, SymKey)>,
}

impl MetadataBody {
    /// A key-less body with the given attributes.
    pub fn bare(inode: u64, kind: NodeKind, owner: u32, group: u32, mode: u32) -> Self {
        MetadataBody {
            inode,
            kind,
            owner,
            group,
            mode,
            size: 0,
            nblocks: 0,
            generation: 0,
            version: 1,
            rekey_pending: false,
            acl: Vec::new(),
            dek: None,
            dvk: None,
            dsk: None,
            msk: None,
            write_teks: Vec::new(),
            owner_meks: Vec::new(),
        }
    }
}

fn write_opt_key(out: &mut Vec<u8>, key: &Option<SymKey>) {
    match key {
        None => 0u8.write(out),
        Some(k) => {
            1u8.write(out);
            k.0.write(out);
        }
    }
}

fn read_opt_key(r: &mut Cursor<'_>) -> std::result::Result<Option<SymKey>, NetError> {
    match u8::read(r)? {
        0 => Ok(None),
        1 => Ok(Some(SymKey(<[u8; 16]>::read(r)?))),
        _ => Err(NetError::Codec("invalid key option")),
    }
}

fn write_opt_blob(out: &mut Vec<u8>, blob: &Option<Vec<u8>>) {
    blob.write(out);
}

impl WireWrite for MetadataBody {
    fn write(&self, out: &mut Vec<u8>) {
        self.inode.write(out);
        (matches!(self.kind, NodeKind::Dir) as u8).write(out);
        self.owner.write(out);
        self.group.write(out);
        self.mode.write(out);
        self.size.write(out);
        self.nblocks.write(out);
        self.generation.write(out);
        self.version.write(out);
        self.rekey_pending.write(out);
        self.acl.write(out);
        write_opt_key(out, &self.dek);
        write_opt_blob(out, &self.dvk.as_ref().map(|k| k.to_bytes()));
        write_opt_blob(out, &self.dsk.as_ref().map(|k| k.to_bytes()));
        write_opt_blob(out, &self.msk.as_ref().map(|k| k.to_bytes()));
        (self.write_teks.len() as u32).write(out);
        for (view, tek) in &self.write_teks {
            view.write(out);
            tek.0.write(out);
        }
        (self.owner_meks.len() as u32).write(out);
        for (view, mek) in &self.owner_meks {
            view.write(out);
            mek.0.write(out);
        }
    }
}

impl WireRead for MetadataBody {
    fn read(r: &mut Cursor<'_>) -> std::result::Result<Self, NetError> {
        let inode = u64::read(r)?;
        let kind = if u8::read(r)? == 1 { NodeKind::Dir } else { NodeKind::File };
        let owner = u32::read(r)?;
        let group = u32::read(r)?;
        let mode = u32::read(r)?;
        let size = u64::read(r)?;
        let nblocks = u32::read(r)?;
        let generation = u64::read(r)?;
        let version = u64::read(r)?;
        let rekey_pending = bool::read(r)?;
        let acl = Vec::<AclEntryWire>::read(r)?;
        let dek = read_opt_key(r)?;
        let parse_vk = |b: Option<Vec<u8>>| -> std::result::Result<Option<VerifyKey>, NetError> {
            b.map(|bytes| VerifyKey::from_bytes(&bytes))
                .transpose()
                .map_err(|_| NetError::Codec("bad verify key"))
        };
        let parse_sk = |b: Option<Vec<u8>>| -> std::result::Result<Option<SigningKey>, NetError> {
            b.map(|bytes| SigningKey::from_bytes(&bytes))
                .transpose()
                .map_err(|_| NetError::Codec("bad signing key"))
        };
        let dvk = parse_vk(Option::<Vec<u8>>::read(r)?)?;
        let dsk = parse_sk(Option::<Vec<u8>>::read(r)?)?;
        let msk = parse_sk(Option::<Vec<u8>>::read(r)?)?;
        let n = u32::read(r)? as usize;
        if n > r.remaining() {
            return Err(NetError::Codec("write_teks length exceeds input"));
        }
        let mut write_teks = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let view = ViewId::read(r)?;
            let tek = SymKey(<[u8; 16]>::read(r)?);
            write_teks.push((view, tek));
        }
        let n = u32::read(r)? as usize;
        if n > r.remaining() {
            return Err(NetError::Codec("owner_meks length exceeds input"));
        }
        let mut owner_meks = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let view = ViewId::read(r)?;
            let mek = SymKey(<[u8; 16]>::read(r)?);
            owner_meks.push((view, mek));
        }
        Ok(MetadataBody {
            inode,
            kind,
            owner,
            group,
            mode,
            size,
            nblocks,
            generation,
            version,
            rekey_pending,
            acl,
            dek,
            dvk,
            dsk,
            msk,
            write_teks,
            owner_meks,
        })
    }
}

/// A stored object: ciphertext (or plaintext for NO-ENC policies) plus an
/// optional signature binding it to its SSP slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedObject {
    /// Encrypted (or plain) body bytes.
    pub ciphertext: Vec<u8>,
    /// Signature over `signing_context(key) || ciphertext`, if the policy
    /// signs.
    pub signature: Option<Vec<u8>>,
}

impl WireWrite for SealedObject {
    fn write(&self, out: &mut Vec<u8>) {
        self.ciphertext.write(out);
        self.signature.write(out);
    }
}

impl WireRead for SealedObject {
    fn read(r: &mut Cursor<'_>) -> std::result::Result<Self, NetError> {
        Ok(SealedObject { ciphertext: Vec::<u8>::read(r)?, signature: Option::<Vec<u8>>::read(r)? })
    }
}

/// Domain-separation prefix binding a signature to the slot it protects, so
/// a malicious SSP cannot swap signed objects between keys.
pub fn signing_context(key: &ObjectKey) -> Vec<u8> {
    let mut ctx = Vec::with_capacity(64);
    ctx.extend_from_slice(b"sharoes:sig:v1");
    key.write(&mut ctx);
    ctx
}

impl SealedObject {
    /// Signs `ciphertext` for slot `key` with `signer`.
    pub fn signed<R: RandomSource + ?Sized>(
        ciphertext: Vec<u8>,
        key: &ObjectKey,
        signer: &SigningKey,
        rng: &mut R,
    ) -> Self {
        let mut msg = signing_context(key);
        msg.extend_from_slice(&ciphertext);
        let signature = signer.sign(rng, &msg);
        SealedObject { ciphertext, signature: Some(signature) }
    }

    /// An unsigned object (baseline policies).
    pub fn unsigned(ciphertext: Vec<u8>) -> Self {
        SealedObject { ciphertext, signature: None }
    }

    /// Verifies the signature for slot `key`; `None` verifier skips.
    pub fn verify(&self, key: &ObjectKey, verifier: Option<&VerifyKey>) -> Result<()> {
        let Some(vk) = verifier else { return Ok(()) };
        let Some(sig) = &self.signature else {
            return Err(CoreError::TamperDetected(format!("missing signature on {key:?}")));
        };
        let mut msg = signing_context(key);
        msg.extend_from_slice(&self.ciphertext);
        vk.verify(&msg, sig)
            .map_err(|_| CoreError::TamperDetected(format!("bad signature on {key:?}")))
    }
}

/// How to seal a metadata body (policy-dependent).
pub enum MetaSeal<'a> {
    /// No encryption (NO-ENC-MD-D, NO-ENC-MD).
    Plain,
    /// Symmetric with the replica's MEK (SHAROES).
    Sym(&'a SymKey),
    /// Whole body public-key encrypted (PUBLIC).
    Public(&'a RsaPublicKey),
    /// Hybrid: fresh symmetric key wrapped with the public key (PUB-OPT).
    PubOpt(&'a RsaPublicKey),
}

/// How to open a sealed metadata body.
pub enum MetaOpen<'a> {
    /// Plaintext.
    Plain,
    /// Symmetric MEK.
    Sym(&'a SymKey),
    /// User private key: PUBLIC (whole-blob) decryption.
    Public(&'a RsaPrivateKey),
    /// User private key: PUB-OPT (unwrap key, then symmetric).
    PubOpt(&'a RsaPrivateKey),
}

/// Seals serialized body bytes per policy.
pub fn seal_metadata<R: RandomSource + ?Sized>(
    seal: MetaSeal<'_>,
    body: &[u8],
    rng: &mut R,
) -> Result<Vec<u8>> {
    Ok(match seal {
        MetaSeal::Plain => body.to_vec(),
        MetaSeal::Sym(mek) => mek.seal(rng, body),
        MetaSeal::Public(pk) => pk.encrypt_blob(rng, body)?,
        MetaSeal::PubOpt(pk) => {
            let mek = SymKey::random(rng);
            let wrapped = pk.encrypt(rng, &mek.0)?;
            let mut out = Vec::with_capacity(wrapped.len() + body.len() + 24);
            wrapped.write(&mut out);
            let sealed = mek.seal(rng, body);
            sealed.write(&mut out);
            out
        }
    })
}

/// Opens sealed metadata bytes per policy.
pub fn open_metadata(open: MetaOpen<'_>, blob: &[u8]) -> Result<Vec<u8>> {
    Ok(match open {
        MetaOpen::Plain => blob.to_vec(),
        MetaOpen::Sym(mek) => mek.open(blob)?,
        MetaOpen::Public(sk) => sk.decrypt_blob(blob)?,
        MetaOpen::PubOpt(sk) => {
            let mut cur = Cursor::new(blob);
            let wrapped =
                Vec::<u8>::read(&mut cur).map_err(|_| CoreError::Corrupt("pub-opt header"))?;
            let sealed =
                Vec::<u8>::read(&mut cur).map_err(|_| CoreError::Corrupt("pub-opt body"))?;
            cur.expect_end().map_err(|_| CoreError::Corrupt("pub-opt trailing"))?;
            let key_bytes = sk.decrypt(&wrapped)?;
            let mek = SymKey::from_slice(&key_bytes)?;
            mek.open(&sealed)?
        }
    })
}

/// Convenience: deterministic RNG for tests.
pub fn test_rng(seed: u64) -> HmacDrbg {
    HmacDrbg::from_seed_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CryptoParams;
    use sharoes_crypto::generate_signing_pair;

    fn sample_body(with_keys: bool) -> MetadataBody {
        let mut rng = test_rng(1);
        let mut body = MetadataBody::bare(42, NodeKind::Dir, 1000, 100, 0o755);
        body.size = 3;
        body.nblocks = 1;
        body.generation = 2;
        body.acl.push(AclEntryWire { is_group: false, id: 7, bits: 0o5 });
        if with_keys {
            let p = CryptoParams::test();
            let (dsk, dvk) = generate_signing_pair(p.sig_scheme, p.sig_bits, &mut rng).unwrap();
            let (msk, _) = generate_signing_pair(p.sig_scheme, p.sig_bits, &mut rng).unwrap();
            body.dek = Some(SymKey::random(&mut rng));
            body.dvk = Some(dvk);
            body.dsk = Some(dsk);
            body.msk = Some(msk);
            body.write_teks = vec![
                (ViewId::Class(ClassTag::Owner), SymKey::random(&mut rng)),
                (ViewId::User(5), SymKey::random(&mut rng)),
            ];
            body.owner_meks = vec![(ViewId::Class(ClassTag::Other), SymKey::random(&mut rng))];
        }
        body
    }

    fn assert_bodies_equal(a: &MetadataBody, b: &MetadataBody) {
        assert_eq!(a.inode, b.inode);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.owner, b.owner);
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.acl, b.acl);
        assert_eq!(a.dek, b.dek);
        assert_eq!(a.dvk, b.dvk);
        assert_eq!(a.dek.is_some(), b.dek.is_some());
        assert_eq!(a.dsk.is_some(), b.dsk.is_some());
        assert_eq!(a.msk.is_some(), b.msk.is_some());
        assert_eq!(a.write_teks.len(), b.write_teks.len());
        for ((v1, k1), (v2, k2)) in a.write_teks.iter().zip(b.write_teks.iter()) {
            assert_eq!(v1, v2);
            assert_eq!(k1, k2);
        }
        assert_eq!(a.owner_meks.len(), b.owner_meks.len());
    }

    #[test]
    fn body_codec_roundtrip() {
        for with_keys in [false, true] {
            let body = sample_body(with_keys);
            let decoded = MetadataBody::from_wire(&body.to_wire()).unwrap();
            assert_bodies_equal(&body, &decoded);
        }
    }

    #[test]
    fn body_codec_rejects_garbage() {
        assert!(MetadataBody::from_wire(&[1, 2, 3]).is_err());
        let mut bytes = sample_body(true).to_wire();
        bytes.truncate(bytes.len() / 2);
        assert!(MetadataBody::from_wire(&bytes).is_err());
    }

    #[test]
    fn all_seal_policies_roundtrip() {
        let mut rng = test_rng(2);
        let rsa = RsaPrivateKey::generate(512, &mut rng).unwrap();
        let mek = SymKey::random(&mut rng);
        let body = sample_body(true).to_wire();

        let plain = seal_metadata(MetaSeal::Plain, &body, &mut rng).unwrap();
        assert_eq!(open_metadata(MetaOpen::Plain, &plain).unwrap(), body);
        assert_eq!(plain, body, "plain sealing must not transform bytes");

        let sym = seal_metadata(MetaSeal::Sym(&mek), &body, &mut rng).unwrap();
        assert_ne!(sym, body);
        assert_eq!(open_metadata(MetaOpen::Sym(&mek), &sym).unwrap(), body);

        let public = seal_metadata(MetaSeal::Public(rsa.public_key()), &body, &mut rng).unwrap();
        assert!(public.len() > body.len());
        assert_eq!(open_metadata(MetaOpen::Public(&rsa), &public).unwrap(), body);

        let pubopt = seal_metadata(MetaSeal::PubOpt(rsa.public_key()), &body, &mut rng).unwrap();
        assert_eq!(open_metadata(MetaOpen::PubOpt(&rsa), &pubopt).unwrap(), body);

        // PUB-OPT pays one RSA block regardless of body size; PUBLIC pays
        // one per chunk — the entire point of the optimization. Visible on
        // bodies larger than one RSA block.
        let big = vec![0xAB; 4096];
        let public_big = seal_metadata(MetaSeal::Public(rsa.public_key()), &big, &mut rng).unwrap();
        let pubopt_big = seal_metadata(MetaSeal::PubOpt(rsa.public_key()), &big, &mut rng).unwrap();
        assert!(pubopt_big.len() < public_big.len());
        assert_eq!(open_metadata(MetaOpen::PubOpt(&rsa), &pubopt_big).unwrap(), big);
        assert_eq!(open_metadata(MetaOpen::Public(&rsa), &public_big).unwrap(), big);
    }

    #[test]
    fn signature_binds_slot() {
        let mut rng = test_rng(3);
        let p = CryptoParams::test();
        let (msk, mvk) = generate_signing_pair(p.sig_scheme, p.sig_bits, &mut rng).unwrap();
        let key = ObjectKey::metadata(1, [1; 16]);
        let other = ObjectKey::metadata(2, [1; 16]);
        let obj = SealedObject::signed(vec![1, 2, 3], &key, &msk, &mut rng);
        obj.verify(&key, Some(&mvk)).unwrap();
        // Swapping the object into another slot must fail verification.
        assert!(matches!(obj.verify(&other, Some(&mvk)), Err(CoreError::TamperDetected(_))));
        // Bit-flip in ciphertext fails.
        let mut bad = obj.clone();
        bad.ciphertext[0] ^= 1;
        assert!(bad.verify(&key, Some(&mvk)).is_err());
        // Missing signature fails when a verifier is expected.
        let unsigned = SealedObject::unsigned(vec![1]);
        assert!(unsigned.verify(&key, Some(&mvk)).is_err());
        // No verifier: unsigned passes (baseline policies).
        unsigned.verify(&key, None).unwrap();
    }

    #[test]
    fn sealed_object_codec() {
        let obj = SealedObject { ciphertext: vec![9; 40], signature: Some(vec![1; 8]) };
        assert_eq!(SealedObject::from_wire(&obj.to_wire()).unwrap(), obj);
        let obj = SealedObject::unsigned(vec![]);
        assert_eq!(SealedObject::from_wire(&obj.to_wire()).unwrap(), obj);
    }

    #[test]
    fn view_id_tags() {
        assert_eq!(ViewId::User(1).tag(5), ViewId::User(1).tag(9), "user views ignore inode");
        assert_ne!(
            ViewId::Class(ClassTag::Owner).tag(5),
            ViewId::Class(ClassTag::Owner).tag(9),
            "cap views bind the inode"
        );
        for v in [ViewId::User(3), ViewId::Class(ClassTag::AclGroup(8))] {
            assert_eq!(ViewId::from_wire(&v.to_wire()).unwrap(), v);
        }
    }
}
