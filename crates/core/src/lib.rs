//! # sharoes-core
//!
//! The core of the Sharoes reproduction (Singh & Liu, ICDE 2008): rich
//! *nix-like data sharing over an untrusted Storage Service Provider,
//! without trusting the SSP for confidentiality or access control.
//!
//! * [`cap`] — Cryptographic Access-control Primitives (Figures 4–5).
//! * [`metadata`] / [`dirtable`] — the key-carrying metadata objects and
//!   four-column directory tables (Figures 2–3).
//! * [`scheme`] — the layout engine: per-user (Scheme-1) and shared-CAP
//!   (Scheme-2) replication, continuations, and split points (§III-D).
//! * [`superblock`] / [`groups`] — in-band key distribution (§II-A, §III-C).
//! * [`client`] — the Sharoes filesystem client (§IV-A, Figure 8) with the
//!   four baseline implementations of §V as alternative crypto policies.
//! * [`migrate`] — the migration tool (§IV).

#![warn(missing_docs)]

pub mod cache;
pub mod cap;
pub mod client;
pub mod dirtable;
pub mod error;
pub mod groups;
pub mod ids;
pub mod keypool;
pub mod keyring;
pub mod metadata;
pub mod migrate;
pub mod params;
pub mod scheme;
pub mod superblock;

pub use cache::{CacheStats, ClientCache};
pub use client::SharoesClient;
pub use error::{CoreError, Result};
pub use ids::ClassTag;
pub use keypool::SigKeyPool;
pub use keyring::{KekChain, Keyring, Pki, UserIdentity};
pub use metadata::{MetadataBody, SealedObject, ViewId};
pub use migrate::{MigrationReport, Migrator};
pub use params::{ClientConfig, CryptoParams, CryptoPolicy, RevocationMode, Scheme};
pub use scheme::{Layout, ObjectAttrs, ObjectSecrets};
