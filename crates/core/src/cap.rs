//! Cryptographic Access-control Primitives (paper §III, Figures 4 and 5).
//!
//! A CAP realizes one rwx permission setting by choosing which key fields a
//! principal's metadata replica contains and which directory-table view it
//! can open. This module is the pure rule table; materialization lives in
//! [`crate::scheme`].
//!
//! Faithful to the paper, some permissions have **no** cryptographic
//! realization with symmetric data keys and are rejected:
//! directory `-wx` (write requires the DEK, which implies read), and file
//! `-w-` / `--x` / `-wx`.

use crate::error::CoreError;
use sharoes_fs::Perm;

/// How much of a directory table a CAP may see.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableAccess {
    /// No table access at all (zero / write-only CAPs).
    None,
    /// Names only — `ls` works, traversal does not (read / read-write CAPs).
    NamesOnly,
    /// All four columns (read-exec / read-write-exec CAPs).
    Full,
    /// Rows individually encrypted under keys derived from entry names:
    /// traversal by exact name only (§III-A exec-only).
    ExecOnly,
}

/// Which key fields a file CAP exposes (Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileCap {
    /// Data encryption key present (read access).
    pub dek: bool,
    /// Data verification key present (can authenticate content).
    pub dvk: bool,
    /// Data signing key present (write access).
    pub dsk: bool,
}

/// Which key fields and table view a directory CAP exposes (Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DirCap {
    /// Table encryption key for this class's replica present.
    pub dek: bool,
    /// Table verification key present.
    pub dvk: bool,
    /// Table signing key present (may modify the directory).
    pub dsk: bool,
    /// What the table replica for this CAP contains.
    pub table: TableAccess,
}

/// Derives the file CAP for a permission triple (Figure 5).
pub fn file_cap(perm: Perm) -> Result<FileCap, CoreError> {
    match (perm.read, perm.write, perm.exec) {
        // zero permissions: metadata visible, no keys.
        (false, false, false) => Ok(FileCap { dek: false, dvk: false, dsk: false }),
        // read (and read-exec: "once the file has been decrypted the client
        // filesystem can execute it").
        (true, false, _) => Ok(FileCap { dek: true, dvk: true, dsk: false }),
        // read-write (and read-write-exec).
        (true, true, _) => Ok(FileCap { dek: true, dvk: true, dsk: true }),
        // write-only / exec-only / write-exec: impossible with symmetric DEKs.
        _ => Err(CoreError::UnsupportedPermission { perm: perm.to_string(), kind: "file" }),
    }
}

/// Derives the directory CAP for a permission triple (Figure 4).
pub fn dir_cap(perm: Perm) -> Result<DirCap, CoreError> {
    match (perm.read, perm.write, perm.exec) {
        // zero and write-only: "write does not work without exec".
        (false, _, false) => {
            Ok(DirCap { dek: false, dvk: false, dsk: false, table: TableAccess::None })
        }
        // read and read-write: listing only ("write does not work without
        // an execute permission", so rw- collapses to r--).
        (true, _, false) => {
            Ok(DirCap { dek: true, dvk: true, dsk: false, table: TableAccess::NamesOnly })
        }
        // read-exec: traversal, no modification.
        (true, false, true) => {
            Ok(DirCap { dek: true, dvk: true, dsk: false, table: TableAccess::Full })
        }
        // read-write-exec: full access.
        (true, true, true) => {
            Ok(DirCap { dek: true, dvk: true, dsk: true, table: TableAccess::Full })
        }
        // exec-only: traversal by exact name.
        (false, false, true) => {
            Ok(DirCap { dek: true, dvk: true, dsk: false, table: TableAccess::ExecOnly })
        }
        // write-exec: unsupported (symmetric table keys would grant read).
        (false, true, true) => {
            Err(CoreError::UnsupportedPermission { perm: perm.to_string(), kind: "directory" })
        }
    }
}

/// True when the permission can traverse into children.
pub fn can_traverse(perm: Perm) -> bool {
    perm.exec
}

/// The table materialization actually stored for a CAP under a policy that
/// may not encrypt data: exec-only row hiding is a *cryptographic*
/// construction (`H_DEKthis(name)`), so the no-encryption baseline degrades
/// it to a full table — there is nothing to hide behind.
pub fn effective_table_access(access: TableAccess, encrypts_data: bool) -> TableAccess {
    match access {
        TableAccess::ExecOnly if !encrypts_data => TableAccess::Full,
        other => other,
    }
}

/// Downgrades an unsupported permission to the nearest supported one
/// (used by the migration tool's `--downgrade` option): drops the write bit
/// from `-wx` directories and write-only files; drops exec from `--x` files.
pub fn downgrade(perm: Perm, is_dir: bool) -> Perm {
    let supported = if is_dir { dir_cap(perm).is_ok() } else { file_cap(perm).is_ok() };
    if supported {
        return perm;
    }
    if is_dir {
        // -wx -> --x
        Perm { read: perm.read, write: false, exec: perm.exec }
    } else {
        // -w- / -wx -> ---; --x -> ---
        Perm::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_file_caps() {
        // zero
        let c = file_cap(Perm::NONE).unwrap();
        assert_eq!((c.dek, c.dvk, c.dsk), (false, false, false));
        // read
        let c = file_cap(Perm::R).unwrap();
        assert_eq!((c.dek, c.dvk, c.dsk), (true, true, false));
        // read-write
        let c = file_cap(Perm::RW).unwrap();
        assert_eq!((c.dek, c.dvk, c.dsk), (true, true, true));
        // read-exec == read
        assert_eq!(file_cap(Perm::RX).unwrap(), file_cap(Perm::R).unwrap());
        // read-write-exec == read-write
        assert_eq!(file_cap(Perm::RWX).unwrap(), file_cap(Perm::RW).unwrap());
    }

    #[test]
    fn unsupported_file_perms_rejected() {
        for p in [Perm::W, Perm::X, Perm::WX] {
            assert!(
                matches!(file_cap(p), Err(CoreError::UnsupportedPermission { kind: "file", .. })),
                "{p}"
            );
        }
    }

    #[test]
    fn figure4_dir_caps() {
        // zero
        let c = dir_cap(Perm::NONE).unwrap();
        assert_eq!(c.table, TableAccess::None);
        assert!(!c.dek && !c.dvk && !c.dsk);
        // write-only == zero
        assert_eq!(dir_cap(Perm::W).unwrap(), dir_cap(Perm::NONE).unwrap());
        // read: names only
        let c = dir_cap(Perm::R).unwrap();
        assert_eq!(c.table, TableAccess::NamesOnly);
        assert!(c.dek && c.dvk && !c.dsk);
        // read-write == read
        assert_eq!(dir_cap(Perm::RW).unwrap(), dir_cap(Perm::R).unwrap());
        // read-exec: all columns, no DSK
        let c = dir_cap(Perm::RX).unwrap();
        assert_eq!(c.table, TableAccess::Full);
        assert!(c.dek && c.dvk && !c.dsk);
        // rwx: all columns + DSK
        let c = dir_cap(Perm::RWX).unwrap();
        assert_eq!(c.table, TableAccess::Full);
        assert!(c.dsk);
        // exec-only: row-encrypted table
        let c = dir_cap(Perm::X).unwrap();
        assert_eq!(c.table, TableAccess::ExecOnly);
        assert!(c.dek && c.dvk && !c.dsk);
    }

    #[test]
    fn write_exec_dir_rejected() {
        assert!(matches!(
            dir_cap(Perm::WX),
            Err(CoreError::UnsupportedPermission { kind: "directory", .. })
        ));
    }

    #[test]
    fn downgrade_rules() {
        assert_eq!(downgrade(Perm::WX, true), Perm::X);
        assert_eq!(downgrade(Perm::W, false), Perm::NONE);
        assert_eq!(downgrade(Perm::X, false), Perm::NONE);
        assert_eq!(downgrade(Perm::WX, false), Perm::NONE);
        // Supported permissions pass through.
        assert_eq!(downgrade(Perm::RWX, true), Perm::RWX);
        assert_eq!(downgrade(Perm::R, false), Perm::R);
        assert_eq!(downgrade(Perm::X, true), Perm::X);
    }

    #[test]
    fn traversal_requires_exec() {
        assert!(can_traverse(Perm::X));
        assert!(can_traverse(Perm::RWX));
        assert!(!can_traverse(Perm::RW));
        assert!(!can_traverse(Perm::NONE));
    }
}
