//! Signature key-pair pooling.
//!
//! Every Sharoes object carries two fresh signing pairs (DSK/DVK, MSK/MVK).
//! Generating ESIGN/RSA keys means prime search, which would otherwise
//! serialize into the create path; the pool amortizes it and lets bulk
//! operations (migration) prefill in batch.

use crate::params::CryptoParams;
use sharoes_crypto::{generate_signing_pair, RandomSource, SigningKey, VerifyKey};
use std::sync::Mutex;

/// A pool of pre-generated signing pairs.
pub struct SigKeyPool {
    params: CryptoParams,
    pool: Mutex<Vec<(SigningKey, VerifyKey)>>,
}

impl SigKeyPool {
    /// An empty pool generating keys per `params`.
    pub fn new(params: CryptoParams) -> Self {
        SigKeyPool { params, pool: Mutex::new(Vec::new()) }
    }

    /// Pre-generates `n` pairs.
    pub fn prefill<R: RandomSource + ?Sized>(&self, n: usize, rng: &mut R) {
        let mut fresh = Vec::with_capacity(n);
        for _ in 0..n {
            fresh.push(
                generate_signing_pair(self.params.sig_scheme, self.params.sig_bits, rng)
                    .expect("signature keygen"),
            );
        }
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).extend(fresh);
    }

    /// Pre-generates `n` pairs across all available cores. Each worker gets
    /// an independent DRBG derived from `seed`, so the pool contents are
    /// deterministic up to ordering.
    pub fn prefill_parallel(&self, n: usize, seed: u64) {
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let quota = n / threads + usize::from(t < n % threads);
                let pool = &self.pool;
                let params = self.params;
                scope.spawn(move || {
                    let mut rng = sharoes_crypto::HmacDrbg::new(
                        &[&seed.to_be_bytes()[..], &(t as u64).to_be_bytes()[..]].concat(),
                    );
                    let mut fresh = Vec::with_capacity(quota);
                    for _ in 0..quota {
                        fresh.push(
                            generate_signing_pair(params.sig_scheme, params.sig_bits, &mut rng)
                                .expect("signature keygen"),
                        );
                    }
                    pool.lock().unwrap_or_else(|e| e.into_inner()).extend(fresh);
                });
            }
        });
    }

    /// Pre-fills the pool with `n` clones of a single freshly generated
    /// pair. Only valid when the consumer never *signs* with these keys
    /// (the PUBLIC/PUB-OPT baselines carry signing-key bytes inside
    /// metadata for size fidelity but perform no signing), so distinctness
    /// is irrelevant and the prefill cost collapses to one keygen.
    pub fn prefill_cloned<R: RandomSource + ?Sized>(&self, n: usize, rng: &mut R) {
        let pair = generate_signing_pair(self.params.sig_scheme, self.params.sig_bits, rng)
            .expect("signature keygen");
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..n {
            pool.push(pair.clone());
        }
    }

    /// Tops the pool up to at least `n` pairs. Rotation storms and bulk
    /// re-keys re-sign rebuilt metadata in batches; topping up ahead of the
    /// storm keeps keygen out of the measured phase without guessing how
    /// much of a previous prefill is left.
    pub fn ensure<R: RandomSource + ?Sized>(&self, n: usize, rng: &mut R) {
        let have = self.len();
        if have < n {
            self.prefill(n - have, rng);
        }
    }

    /// Takes a pair, generating one on demand if the pool is dry.
    pub fn take<R: RandomSource + ?Sized>(&self, rng: &mut R) -> (SigningKey, VerifyKey) {
        if let Some(pair) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return pair;
        }
        generate_signing_pair(self.params.sig_scheme, self.params.sig_bits, rng)
            .expect("signature keygen")
    }

    /// Current pool depth.
    pub fn len(&self) -> usize {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no pre-generated pairs remain.
    pub fn is_empty(&self) -> bool {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharoes_crypto::HmacDrbg;

    #[test]
    fn prefill_and_take() {
        let pool = SigKeyPool::new(CryptoParams::test());
        let mut rng = HmacDrbg::from_seed_u64(1);
        assert!(pool.is_empty());
        pool.prefill(3, &mut rng);
        assert_eq!(pool.len(), 3);
        let (sk, vk) = pool.take(&mut rng);
        assert_eq!(pool.len(), 2);
        let sig = sk.sign(&mut rng, b"x");
        vk.verify(b"x", &sig).unwrap();
    }

    #[test]
    fn ensure_tops_up_to_target() {
        let pool = SigKeyPool::new(CryptoParams::test());
        let mut rng = HmacDrbg::from_seed_u64(2);
        pool.ensure(2, &mut rng);
        assert_eq!(pool.len(), 2);
        pool.ensure(1, &mut rng);
        assert_eq!(pool.len(), 2, "ensure never shrinks or over-fills");
        pool.ensure(4, &mut rng);
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn parallel_prefill_fills_pool() {
        let pool = SigKeyPool::new(CryptoParams::test());
        pool.prefill_parallel(7, 42);
        assert_eq!(pool.len(), 7);
        let mut rng = HmacDrbg::from_seed_u64(3);
        let (sk, vk) = pool.take(&mut rng);
        let sig = sk.sign(&mut rng, b"parallel");
        vk.verify(b"parallel", &sig).unwrap();
    }

    #[test]
    fn take_generates_on_dry_pool() {
        let pool = SigKeyPool::new(CryptoParams::test());
        let mut rng = HmacDrbg::from_seed_u64(2);
        let (sk, vk) = pool.take(&mut rng);
        let sig = sk.sign(&mut rng, b"on demand");
        vk.verify(b"on demand", &sig).unwrap();
    }
}
