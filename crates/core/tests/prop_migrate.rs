//! Property test: migrating one randomized enterprise (random group graph,
//! random modes, random ACL grants) under Scheme-1 and Scheme-2 preserves
//! every reader/writer capability — the two layouts must admit and deny
//! exactly the same principals on every file, before and after a write.
//!
//! The fixed-shape version of this lives in `tests/scheme_equivalence.rs`;
//! this one drives the shape itself from the property tape.

use sharoes_core::{
    ClientConfig, CryptoPolicy, Keyring, Migrator, Scheme, SharoesClient, SigKeyPool,
};
use sharoes_fs::{Acl, Gid, LocalFs, Mode, Perm, Uid, UserDb, ROOT_UID};
use sharoes_net::InMemoryTransport;
use sharoes_ssp::SspServer;
use sharoes_testkit::prelude::*;
use std::sync::Arc;

/// One generated file: (owner index, mode octal, ACL grants as
/// (grantee index, read-write?) pairs).
type FileSpec = (usize, u32, Vec<(usize, bool)>);

/// A randomized enterprise: group graph + homed files with random sharing.
#[derive(Debug, Clone)]
struct GraphSpec {
    users: usize,
    groups: usize,
    /// user index -> primary group index.
    primary: Vec<usize>,
    /// (user index, extra group index) memberships.
    extra: Vec<(usize, usize)>,
    files: Vec<FileSpec>,
    keyring_seed: u64,
}

fn uid(i: usize) -> Uid {
    Uid(1000 + i as u32)
}

fn gid(j: usize) -> Gid {
    Gid(200 + j as u32)
}

fn graphs() -> Gen<GraphSpec> {
    Gen::from_fn(|t| {
        let users = t.usize_in(2, 5);
        let groups = t.usize_in(1, 4);
        let primary = (0..users).map(|_| t.usize_in(0, groups)).collect::<Vec<_>>();
        let mut extra = Vec::new();
        for u in 0..users {
            if t.bool() {
                extra.push((u, t.usize_in(0, groups)));
            }
        }
        let files = (0..t.usize_in(1, 4))
            .map(|_| {
                let owner = t.usize_in(0, users);
                let mode = t.u64_in(0, 0o1000) as u32;
                let grants = (0..t.usize_in(0, 3))
                    .map(|_| (t.usize_in(0, users), t.bool()))
                    .filter(|(g, _)| *g != owner)
                    .collect();
                (owner, mode, grants)
            })
            .collect();
        Ok(GraphSpec { users, groups, primary, extra, files, keyring_seed: t.u64() })
    })
}

/// Builds the ground-truth local filesystem described by the spec.
fn build_fs(spec: &GraphSpec) -> LocalFs {
    let mut db = UserDb::new();
    db.add_group(Gid(0), "wheel").unwrap();
    for j in 0..spec.groups {
        db.add_group(gid(j), &format!("g{j}")).unwrap();
    }
    db.add_user(ROOT_UID, "root", Gid(0)).unwrap();
    for (i, &pg) in spec.primary.iter().enumerate() {
        db.add_user(uid(i), &format!("u{i}"), gid(pg)).unwrap();
    }
    for &(u, g) in &spec.extra {
        db.add_member(gid(g), uid(u)).unwrap();
    }
    let mut fs = LocalFs::new(db, Gid(0), Mode::from_octal(0o755));
    fs.mkdir(ROOT_UID, "/home", Mode::from_octal(0o755)).unwrap();
    for i in 0..spec.users {
        let home = format!("/home/u{i}");
        fs.mkdir(ROOT_UID, &home, Mode::from_octal(0o755)).unwrap();
        fs.chown(ROOT_UID, &home, uid(i), gid(spec.primary[i])).unwrap();
    }
    for (fi, (owner, mode, grants)) in spec.files.iter().enumerate() {
        let path = format!("/home/u{owner}/f{fi}.dat");
        fs.create(uid(*owner), &path, Mode::from_octal(0o600)).unwrap();
        fs.write(uid(*owner), &path, format!("file {fi} body").as_bytes()).unwrap();
        if !grants.is_empty() {
            let mut acl = Acl::empty();
            for &(g, rw) in grants {
                acl.set_user(uid(g), if rw { Perm::RW } else { Perm::R });
            }
            fs.set_acl(uid(*owner), &path, acl).unwrap();
        }
        fs.chmod(uid(*owner), &path, Mode::from_octal(*mode)).unwrap();
    }
    fs
}

struct World {
    server: Arc<SspServer>,
    db: Arc<UserDb>,
    pki: Arc<sharoes_core::Pki>,
    ring: Keyring,
    pool: Arc<SigKeyPool>,
    config: ClientConfig,
}

fn deploy(fs: &LocalFs, scheme: Scheme, ring: Keyring, seed: u64) -> World {
    let mut rng = HmacDrbg::from_seed_u64(seed);
    let config = ClientConfig::test_with(CryptoPolicy::Sharoes, scheme);
    let pool = Arc::new(SigKeyPool::new(config.crypto));
    let server = SspServer::new().into_shared();
    let mut transport = InMemoryTransport::new(Arc::clone(&server) as _);
    Migrator { fs, config: &config, ring: &ring, pool: &pool, downgrade_unsupported: true }
        .migrate(&mut transport, &mut rng)
        .expect("migration");
    World {
        server,
        db: Arc::new(fs.users().clone()),
        pki: Arc::new(ring.public_directory()),
        ring,
        pool,
        config,
    }
}

impl World {
    fn mount(&self, uid: Uid) -> SharoesClient {
        let transport = InMemoryTransport::new(Arc::clone(&self.server) as _);
        let mut client = SharoesClient::new(
            Box::new(transport),
            self.config.clone(),
            Arc::clone(&self.db),
            Arc::clone(&self.pki),
            self.ring.identity(uid).unwrap(),
            Arc::clone(&self.pool),
        );
        client.mount().expect("mount");
        client
    }
}

prop! {
    // Each case pays two migrations plus per-user RSA keygen; a handful of
    // randomized graphs buys far more shape coverage than the two fixed
    // trees in scheme_equivalence.rs.
    #![cases(6)]

    fn migrate_preserves_capabilities_across_schemes(spec in graphs()) {
        let fs = build_fs(&spec);
        let mut rng = HmacDrbg::from_seed_u64(spec.keyring_seed);
        let ring1 = Keyring::generate(fs.users(), 512, &mut rng).unwrap();
        let ring2 = ring1.clone();
        let w1 = deploy(&fs, Scheme::PerUser, ring1, spec.keyring_seed ^ 1);
        let w2 = deploy(&fs, Scheme::SharedCaps, ring2, spec.keyring_seed ^ 2);

        for u in 0..spec.users {
            let mut c1 = w1.mount(uid(u));
            let mut c2 = w2.mount(uid(u));
            for (fi, (owner, mode, _)) in spec.files.iter().enumerate() {
                let path = format!("/home/u{owner}/f{fi}.dat");

                // Reader capability: identical outcome, identical bytes.
                let r1 = c1.read(&path);
                let r2 = c2.read(&path);
                prop_assert_eq!(
                    r1.is_ok(),
                    r2.is_ok(),
                    "read capability diverged for u{u} at {path}: \
                     per-user={r1:?} shared-caps={r2:?}"
                );
                if let (Ok(b1), Ok(b2)) = (&r1, &r2) {
                    prop_assert_eq!(b1, b2, "content diverged for u{u} at {path}");
                }
                // Positive control: an owner whose class bits grant rw (a
                // combination migration always supports) must keep reading
                // their own data. Other modes may legitimately deny even
                // the owner (e.g. 0o077), so no blanket owner assertion.
                if u == *owner && (mode >> 6) & 0o7 == 0o6 {
                    prop_assert!(r1.is_ok(), "owner u{u} lost read on {path} (mode {mode:o})");
                }

                // Writer capability: both schemes admit or deny together,
                // and an admitted write is visible identically afterwards.
                let body = format!("rewrite by u{u} of f{fi}");
                let w1_res = c1.write_file(&path, body.as_bytes());
                let w2_res = c2.write_file(&path, body.as_bytes());
                prop_assert_eq!(
                    w1_res.is_ok(),
                    w2_res.is_ok(),
                    "write capability diverged for u{u} at {path}: \
                     per-user={w1_res:?} shared-caps={w2_res:?}"
                );
                if w1_res.is_ok() {
                    let rb1 = c1.read(&path);
                    let rb2 = c2.read(&path);
                    prop_assert_eq!(
                        rb1.is_ok(),
                        rb2.is_ok(),
                        "post-write read capability diverged for u{u} at {path}"
                    );
                    if let (Ok(b1), Ok(b2)) = (rb1, rb2) {
                        prop_assert_eq!(&b1, body.as_bytes(), "stale bytes after write");
                        prop_assert_eq!(b1, b2, "post-write content diverged at {path}");
                    }
                }
            }
        }
    }
}
