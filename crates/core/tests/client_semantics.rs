//! End-to-end semantics: the Sharoes client must expose *nix-equivalent
//! data sharing semantics over the untrusted SSP, for both schemes and all
//! five implementations.

mod common;

use common::{World, ALICE, BOB, CAROL};
use sharoes_core::{CoreError, CryptoPolicy, Scheme};
use sharoes_fs::{Mode, NodeKind, Perm};

fn all_schemes() -> [Scheme; 2] {
    [Scheme::SharedCaps, Scheme::PerUser]
}

#[test]
fn owner_reads_own_tree() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut alice = world.client(ALICE);
        assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
        assert_eq!(alice.read("/home/alice/private/key").unwrap(), b"top secret");
        let st = alice.getattr("/home/alice/notes.txt").unwrap();
        assert_eq!(st.owner, ALICE);
        assert_eq!(st.mode, Mode::from_octal(0o644));
        assert_eq!(st.kind, NodeKind::File);
        assert_eq!(st.size, 13);
    }
}

#[test]
fn group_member_reads_world_readable() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut bob = world.client(BOB);
        assert_eq!(bob.read("/home/alice/notes.txt").unwrap(), b"alice's notes", "{scheme:?}");
        assert_eq!(bob.read("/shared/board.txt").unwrap(), b"minutes");
    }
}

#[test]
fn private_dir_blocks_traversal() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut bob = world.client(BOB);
        let err = bob.read("/home/alice/private/key").unwrap_err();
        assert!(
            matches!(err, CoreError::PermissionDenied { .. } | CoreError::NotFound(_)),
            "{scheme:?}: {err}"
        );
        let mut carol = world.client(CAROL);
        assert!(carol.read("/home/alice/private/key").is_err());
    }
}

#[test]
fn exec_only_dropbox_semantics() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut bob = world.client(BOB);
        // Cannot list...
        let err = bob.readdir("/home/alice/dropbox").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied { needed: "read", .. }), "{scheme:?}");
        // ...but can fetch by exact name (the paper's §III-A headline CAP).
        assert_eq!(bob.read("/home/alice/dropbox/drop").unwrap(), b"droppable");
        // Wrong name: not found, and no information about what exists.
        assert!(matches!(
            bob.read("/home/alice/dropbox/guess").unwrap_err(),
            CoreError::NotFound(_)
        ));
    }
}

#[test]
fn read_only_listing_semantics() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut bob = world.client(BOB);
        // Can list names...
        let entries = bob.readdir("/home/alice/listing").unwrap();
        assert_eq!(entries.len(), 1, "{scheme:?}");
        assert_eq!(entries[0].name, "seen");
        // Read-only CAP hides inode numbers and keys.
        assert_eq!(entries[0].inode, None);
        // ...but cannot traverse (no exec).
        assert!(matches!(
            bob.read("/home/alice/listing/seen").unwrap_err(),
            CoreError::PermissionDenied { needed: "exec (traverse)", .. }
        ));
        assert!(bob.getattr("/home/alice/listing/seen").is_err());
    }
}

#[test]
fn owner_readdir_shows_full_rows() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let mut entries = alice.readdir("/home/alice").unwrap();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["dropbox", "listing", "notes.txt", "private"]);
    assert!(entries.iter().all(|e| e.inode.is_some()));
}

#[test]
fn group_writer_updates_shared_file() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut bob = world.client(BOB);
        bob.write_file("/shared/board.txt", b"minutes v2 by bob").unwrap();
        // Both bob and alice see the update.
        assert_eq!(bob.read("/shared/board.txt").unwrap(), b"minutes v2 by bob");
        let mut alice = world.client(ALICE);
        assert_eq!(alice.read("/shared/board.txt").unwrap(), b"minutes v2 by bob", "{scheme:?}");
    }
}

#[test]
fn non_writer_cannot_write() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut carol = world.client(CAROL);
        // carol can read /shared/board.txt (0664 other=r) but not write.
        assert_eq!(carol.read("/shared/board.txt").unwrap(), b"minutes");
        assert!(matches!(
            carol.write("/shared/board.txt", b"vandalism"),
            Err(CoreError::PermissionDenied { .. })
        ));
        // And bob cannot write alice's notes (0644).
        let mut bob = world.client(BOB);
        assert!(bob.write("/home/alice/notes.txt", b"graffiti").is_err());
    }
}

#[test]
fn create_write_read_delete_cycle() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut alice = world.client(ALICE);
        alice.create("/home/alice/fresh.txt", Mode::from_octal(0o644)).unwrap();
        assert_eq!(alice.read("/home/alice/fresh.txt").unwrap(), b"");
        alice.write_file("/home/alice/fresh.txt", b"fresh content").unwrap();
        assert_eq!(alice.read("/home/alice/fresh.txt").unwrap(), b"fresh content");

        // Visible to another mounted client.
        let mut bob = world.client(BOB);
        assert_eq!(bob.read("/home/alice/fresh.txt").unwrap(), b"fresh content", "{scheme:?}");

        alice.unlink("/home/alice/fresh.txt").unwrap();
        assert!(matches!(alice.read("/home/alice/fresh.txt").unwrap_err(), CoreError::NotFound(_)));
        let mut bob2 = world.client(BOB);
        assert!(bob2.read("/home/alice/fresh.txt").is_err());
    }
}

#[test]
fn mkdir_and_nested_creation() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.mkdir("/home/alice/proj", Mode::from_octal(0o755)).unwrap();
    alice.mkdir("/home/alice/proj/src", Mode::from_octal(0o755)).unwrap();
    alice.create("/home/alice/proj/src/main.rs", Mode::from_octal(0o644)).unwrap();
    alice.write_file("/home/alice/proj/src/main.rs", b"fn main() {}").unwrap();
    assert_eq!(alice.read("/home/alice/proj/src/main.rs").unwrap(), b"fn main() {}");
    let st = alice.getattr("/home/alice/proj").unwrap();
    assert_eq!(st.kind, NodeKind::Dir);

    // Fresh client (cold cache) sees the whole subtree.
    let mut bob = world.client(BOB);
    assert_eq!(bob.read("/home/alice/proj/src/main.rs").unwrap(), b"fn main() {}");
}

#[test]
fn create_in_shared_dir_by_group_member() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut bob = world.client(BOB);
        bob.create("/shared/bobs.txt", Mode::from_octal(0o664)).unwrap();
        bob.write_file("/shared/bobs.txt", b"from bob").unwrap();
        let mut alice = world.client(ALICE);
        assert_eq!(alice.read("/shared/bobs.txt").unwrap(), b"from bob", "{scheme:?}");
        // alice (group member) can edit bob's 0664 file.
        alice.write_file("/shared/bobs.txt", b"edited by alice").unwrap();
        let mut bob2 = world.client(BOB);
        assert_eq!(bob2.read("/shared/bobs.txt").unwrap(), b"edited by alice");
        // carol (other) cannot create here.
        let mut carol = world.client(CAROL);
        assert!(carol.create("/shared/carols.txt", Mode::from_octal(0o644)).is_err());
    }
}

#[test]
fn duplicate_and_missing_errors() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    assert!(matches!(
        alice.create("/home/alice/notes.txt", Mode::from_octal(0o644)).unwrap_err(),
        CoreError::AlreadyExists(_)
    ));
    assert!(matches!(alice.read("/home/alice/nope").unwrap_err(), CoreError::NotFound(_)));
    assert!(matches!(
        alice.read("/home/alice/notes.txt/sub").unwrap_err(),
        CoreError::NotADirectory(_)
    ));
    assert!(matches!(alice.read("/home/alice").unwrap_err(), CoreError::IsADirectory(_)));
}

#[test]
fn rename_within_directory() {
    for scheme in all_schemes() {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut alice = world.client(ALICE);
        alice.rename("/home/alice/notes.txt", "/home/alice/renamed.txt").unwrap();
        assert!(alice.read("/home/alice/notes.txt").is_err());
        assert_eq!(alice.read("/home/alice/renamed.txt").unwrap(), b"alice's notes");
        // Another client agrees.
        let mut bob = world.client(BOB);
        assert_eq!(bob.read("/home/alice/renamed.txt").unwrap(), b"alice's notes", "{scheme:?}");
        // Rename through an exec-only view re-keys hidden rows correctly.
        alice.rename("/home/alice/dropbox/drop", "/home/alice/dropbox/drop2").unwrap();
        let mut bob2 = world.client(BOB);
        assert!(bob2.read("/home/alice/dropbox/drop").is_err());
        assert_eq!(bob2.read("/home/alice/dropbox/drop2").unwrap(), b"droppable");
    }
}

#[test]
fn rmdir_requires_empty() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    assert!(matches!(alice.rmdir("/home/alice/private").unwrap_err(), CoreError::NotEmpty(_)));
    alice.unlink("/home/alice/private/key").unwrap();
    alice.rmdir("/home/alice/private").unwrap();
    assert!(alice.getattr("/home/alice/private").is_err());
}

#[test]
fn all_policies_basic_semantics() {
    for policy in [
        CryptoPolicy::NoEncMdD,
        CryptoPolicy::NoEncMd,
        CryptoPolicy::Sharoes,
        CryptoPolicy::Public,
        CryptoPolicy::PubOpt,
    ] {
        let world = World::new(policy, Scheme::SharedCaps);
        let mut alice = world.client(ALICE);
        assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"alice's notes", "{policy:?}");
        alice.create("/home/alice/x.txt", Mode::from_octal(0o644)).unwrap();
        alice.write_file("/home/alice/x.txt", b"xyz").unwrap();
        assert_eq!(alice.read("/home/alice/x.txt").unwrap(), b"xyz", "{policy:?}");
        let mut bob = world.client(BOB);
        assert_eq!(bob.read("/home/alice/x.txt").unwrap(), b"xyz", "{policy:?}");
        // Exec-only still behaves across policies.
        assert!(bob.readdir("/home/alice/dropbox").is_err());
        assert_eq!(bob.read("/home/alice/dropbox/drop").unwrap(), b"droppable", "{policy:?}");
    }
}

#[test]
fn multi_block_files_roundtrip() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    // Default test block size is 4096; write ~3.5 blocks.
    let big: Vec<u8> = (0..14_000u32).map(|i| (i % 251) as u8).collect();
    alice.create("/home/alice/big.bin", Mode::from_octal(0o644)).unwrap();
    alice.write_file("/home/alice/big.bin", &big).unwrap();
    assert_eq!(alice.read("/home/alice/big.bin").unwrap(), big);
    let mut bob = world.client(BOB);
    assert_eq!(bob.read("/home/alice/big.bin").unwrap(), big);

    // Shrink: stale blocks must disappear.
    alice.write_file("/home/alice/big.bin", b"now tiny").unwrap();
    let mut bob2 = world.client(BOB);
    assert_eq!(bob2.read("/home/alice/big.bin").unwrap(), b"now tiny");
}

#[test]
fn split_points_route_owner_and_group() {
    // /home is root-owned; /home/alice is alice-owned: continuation for
    // /home's classes lands on Group or Other, and alice reaches her Owner
    // CAP via a split entry (§III-D.2).
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let st = alice.getattr("/home/alice").unwrap();
    assert_eq!(st.owner, ALICE);
    // Owner powers prove she reached her Owner CAP: she can chmod.
    alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o600)).unwrap();
    let mut bob = world.client(BOB);
    assert!(bob.read("/home/alice/notes.txt").is_err());
}

#[test]
fn deep_unshared_paths_have_no_splits_for_owner() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    // Below /home/alice everything is alice-owned: her class stays Owner,
    // so resolution succeeds repeatedly (and cheaply) without split lookups.
    for _ in 0..3 {
        assert_eq!(alice.read("/home/alice/private/key").unwrap(), b"top secret");
    }
}

#[test]
fn perm_of_matches_local_model() {
    // The client's permission view must agree with the local-fs reference.
    let fs = common::sample_tree();
    let world = World::from_fs(fs.clone(), CryptoPolicy::Sharoes, Scheme::SharedCaps, 7);
    let mut clients: Vec<_> =
        [ALICE, BOB, CAROL].into_iter().map(|u| (u, world.client(u))).collect();
    for path in ["/home/alice/notes.txt", "/shared/board.txt", "/home/alice/dropbox/drop"] {
        for (uid, client) in clients.iter_mut() {
            let local = fs.read(*uid, path);
            let remote = client.read(path);
            assert_eq!(
                local.is_ok(),
                remote.is_ok(),
                "access parity broke for {uid} on {path}: local={local:?} remote={remote:?}"
            );
            if let (Ok(l), Ok(r)) = (local, remote) {
                assert_eq!(l, r, "content parity broke for {uid} on {path}");
            }
        }
    }
}

#[test]
fn write_visibility_before_close() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.write("/home/alice/notes.txt", b"draft").unwrap();
    // The writer sees their own uncommitted draft...
    assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"draft");
    // ...but other clients still see the old content until close.
    let mut bob = world.client(BOB);
    assert_eq!(bob.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
    alice.close("/home/alice/notes.txt").unwrap();
    let mut bob2 = world.client(BOB);
    assert_eq!(bob2.read("/home/alice/notes.txt").unwrap(), b"draft");
}

#[test]
fn unsupported_permissions_rejected_at_runtime() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    // Directory write-exec for group.
    assert!(matches!(
        alice.mkdir("/home/alice/wx", Mode::from_octal(0o730)).unwrap_err(),
        CoreError::UnsupportedPermission { .. }
    ));
    // File write-only for other.
    assert!(matches!(
        alice.create("/home/alice/wo", Mode::from_octal(0o642)).unwrap_err(),
        CoreError::UnsupportedPermission { .. }
    ));
    // chmod into an unsupported mode is refused too.
    assert!(alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o602)).is_err());
    let _ = Perm::WX; // referenced for readability
}

#[test]
fn chmod_requires_ownership() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut bob = world.client(BOB);
    assert!(matches!(
        bob.chmod("/home/alice/notes.txt", Mode::from_octal(0o666)).unwrap_err(),
        CoreError::PermissionDenied { .. }
    ));
}

#[test]
fn mount_required() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let transport = sharoes_net::InMemoryTransport::new(std::sync::Arc::clone(&world.server) as _);
    let identity = world.ring.identity(ALICE).unwrap();
    let mut client = sharoes_core::SharoesClient::new(
        Box::new(transport),
        world.config.clone(),
        std::sync::Arc::clone(&world.db),
        std::sync::Arc::clone(&world.pki),
        identity,
        std::sync::Arc::clone(&world.pool),
    );
    assert!(matches!(client.read("/shared/board.txt").unwrap_err(), CoreError::NotMounted));
    client.mount().unwrap();
    assert!(client.is_mounted());
    assert_eq!(client.read("/shared/board.txt").unwrap(), b"minutes");
}
