//! Shared end-to-end test fixture: a migrated enterprise with mountable
//! per-user clients.

use sharoes_core::{
    ClientConfig, CryptoParams, CryptoPolicy, Keyring, Migrator, Pki, Scheme, SharoesClient,
    SigKeyPool,
};
use sharoes_crypto::HmacDrbg;
use sharoes_fs::{Gid, LocalFs, Mode, Uid, UserDb, ROOT_UID};
use sharoes_net::InMemoryTransport;
use sharoes_ssp::SspServer;
use std::sync::Arc;

/// A migrated deployment: SSP + keys + directory, from which clients mount.
pub struct World {
    pub server: Arc<SspServer>,
    pub db: Arc<UserDb>,
    pub pki: Arc<Pki>,
    pub ring: Keyring,
    pub pool: Arc<SigKeyPool>,
    pub config: ClientConfig,
}

pub const ALICE: Uid = Uid(1);
pub const BOB: Uid = Uid(2);
pub const CAROL: Uid = Uid(3);
pub const STAFF: Gid = Gid(100);
pub const OUTSIDE: Gid = Gid(200);

/// Users: root, alice+bob in `staff`, carol in `outside`.
pub fn small_db() -> UserDb {
    let mut db = UserDb::new();
    db.add_group(Gid(0), "wheel").unwrap();
    db.add_group(STAFF, "staff").unwrap();
    db.add_group(OUTSIDE, "outside").unwrap();
    db.add_user(ROOT_UID, "root", Gid(0)).unwrap();
    db.add_user(ALICE, "alice", STAFF).unwrap();
    db.add_user(BOB, "bob", STAFF).unwrap();
    db.add_user(CAROL, "carol", OUTSIDE).unwrap();
    db
}

/// A local tree exercising the interesting permission shapes:
///
/// ```text
/// /                        root 0755
/// /home                    root 0755
/// /home/alice              alice:staff 0755
/// /home/alice/notes.txt    alice 0644  "alice's notes"
/// /home/alice/private      alice 0700
/// /home/alice/private/key  alice 0600  "top secret"
/// /home/alice/dropbox      alice 0711  (exec-only for group/other)
/// /home/alice/dropbox/drop alice 0644  "droppable"
/// /home/alice/listing      alice 0744  (read-only listing for others)
/// /home/alice/listing/seen alice 0644  "listed"
/// /shared                  root:staff 0775 (staff-writable)
/// /shared/board.txt        alice 0664  "minutes"
/// ```
pub fn sample_tree() -> LocalFs {
    let mut fs = LocalFs::new(small_db(), Gid(0), Mode::from_octal(0o755));
    let m = Mode::from_octal;
    fs.mkdir(ROOT_UID, "/home", m(0o755)).unwrap();
    fs.mkdir(ROOT_UID, "/home/alice", m(0o755)).unwrap();
    fs.chown(ROOT_UID, "/home/alice", ALICE, STAFF).unwrap();
    fs.create(ALICE, "/home/alice/notes.txt", m(0o644)).unwrap();
    fs.write(ALICE, "/home/alice/notes.txt", b"alice's notes").unwrap();
    fs.mkdir(ALICE, "/home/alice/private", m(0o700)).unwrap();
    fs.create(ALICE, "/home/alice/private/key", m(0o600)).unwrap();
    fs.write(ALICE, "/home/alice/private/key", b"top secret").unwrap();
    fs.mkdir(ALICE, "/home/alice/dropbox", m(0o711)).unwrap();
    fs.create(ALICE, "/home/alice/dropbox/drop", m(0o644)).unwrap();
    fs.write(ALICE, "/home/alice/dropbox/drop", b"droppable").unwrap();
    fs.mkdir(ALICE, "/home/alice/listing", m(0o744)).unwrap();
    fs.create(ALICE, "/home/alice/listing/seen", m(0o644)).unwrap();
    fs.write(ALICE, "/home/alice/listing/seen", b"listed").unwrap();
    fs.mkdir(ROOT_UID, "/shared", m(0o775)).unwrap();
    fs.chown(ROOT_UID, "/shared", ROOT_UID, STAFF).unwrap();
    fs.create(ALICE, "/shared/board.txt", m(0o664)).unwrap();
    fs.write(ALICE, "/shared/board.txt", b"minutes").unwrap();
    fs
}

impl World {
    /// Migrates `sample_tree()` under the given policy/scheme.
    pub fn new(policy: CryptoPolicy, scheme: Scheme) -> World {
        Self::from_fs(sample_tree(), policy, scheme, 0xC0FFEE)
    }

    /// Migrates an arbitrary tree.
    pub fn from_fs(fs: LocalFs, policy: CryptoPolicy, scheme: Scheme, seed: u64) -> World {
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ring = Keyring::generate(fs.users(), 512, &mut rng).expect("keyring");
        let config = ClientConfig::test_with(policy, scheme);
        let pool = Arc::new(SigKeyPool::new(CryptoParams::test()));
        let server = SspServer::new().into_shared();
        let mut transport = InMemoryTransport::new(Arc::clone(&server) as _);
        let migrator = Migrator {
            fs: &fs,
            config: &config,
            ring: &ring,
            pool: &pool,
            downgrade_unsupported: true,
        };
        migrator.migrate(&mut transport, &mut rng).expect("migration");
        let db = Arc::new(fs.users().clone());
        let pki = Arc::new(ring.public_directory());
        World { server, db, pki, ring, pool, config }
    }

    /// Mounts a client for `uid`.
    pub fn client(&self, uid: Uid) -> SharoesClient {
        self.client_with_config(uid, self.config.clone())
    }

    /// Mounts a client with a custom config (e.g. a small cache).
    pub fn client_with_config(&self, uid: Uid, config: ClientConfig) -> SharoesClient {
        // Identically-seeded sessions allocate identical inodes, so each
        // mount folds in a process-wide counter to stay collision-free when
        // a test mounts the same uid twice.
        static MOUNTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let mount = MOUNTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let transport = InMemoryTransport::new(Arc::clone(&self.server) as _);
        let identity = self.ring.identity(uid).expect("identity");
        let mut client = SharoesClient::with_rng(
            Box::new(transport),
            config,
            Arc::clone(&self.db),
            Arc::clone(&self.pki),
            identity,
            Arc::clone(&self.pool),
            HmacDrbg::from_seed_u64(
                0xBEEF ^ uid.0 as u64 ^ mount.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
        );
        client.mount().expect("mount");
        client
    }
}
