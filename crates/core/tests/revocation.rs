//! Revocation semantics (paper §IV-A.1): immediate vs lazy re-keying on
//! chmod, ACL grants/revocations, and split-entry routing for ACL users.

mod common;

use common::{World, ALICE, BOB, CAROL};
use sharoes_core::{ClientConfig, CoreError, CryptoPolicy, RevocationMode, Scheme};
use sharoes_fs::{Acl, Mode, Perm};

#[test]
fn immediate_revocation_locks_out_reader() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let mut bob = world.client(BOB);

    // bob can read 0644 notes.
    assert_eq!(bob.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
    let gen_before = bob.getattr("/home/alice/notes.txt").unwrap().generation;

    // alice revokes group/other read.
    alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o600)).unwrap();

    // A fresh bob client (no cached plaintext) is locked out.
    let mut bob2 = world.client(BOB);
    assert!(bob2.read("/home/alice/notes.txt").is_err());

    // Immediate mode re-keyed: the generation advanced and data moved.
    let mut alice2 = world.client(ALICE);
    let st = alice2.getattr("/home/alice/notes.txt").unwrap();
    assert_eq!(st.generation, gen_before + 1);
    assert!(!st.rekey_pending);
    assert_eq!(alice2.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
}

#[test]
fn grant_then_revoke_roundtrip() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);

    // private/key is 0600; grant group read.
    alice.chmod("/home/alice/private", Mode::from_octal(0o750)).unwrap();
    alice.chmod("/home/alice/private/key", Mode::from_octal(0o640)).unwrap();
    let mut bob = world.client(BOB);
    assert_eq!(bob.read("/home/alice/private/key").unwrap(), b"top secret");

    // Revoke again.
    alice.chmod("/home/alice/private/key", Mode::from_octal(0o600)).unwrap();
    let mut bob2 = world.client(BOB);
    assert!(bob2.read("/home/alice/private/key").is_err());
}

#[test]
fn lazy_revocation_defers_rekey_until_owner_write() {
    let mut config = ClientConfig::test_with(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    config.revocation = RevocationMode::Lazy;
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);

    let mut alice = world.client_with_config(ALICE, config.clone());
    let gen_before = alice.getattr("/home/alice/notes.txt").unwrap().generation;
    alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o600)).unwrap();

    // Lazy: marked pending, generation unchanged, data not re-encrypted.
    let st = alice.getattr("/home/alice/notes.txt").unwrap();
    assert!(st.rekey_pending);
    assert_eq!(st.generation, gen_before);

    // A fresh bob cannot read through the metadata path (his CAP lost the
    // DEK) even though the ciphertext is unchanged.
    let mut bob = world.client(BOB);
    assert!(bob.read("/home/alice/notes.txt").is_err());

    // The next owner write rotates the key.
    alice.write_file("/home/alice/notes.txt", b"rotated now").unwrap();
    let st = alice.getattr("/home/alice/notes.txt").unwrap();
    assert!(!st.rekey_pending);
    assert_eq!(st.generation, gen_before + 1);
    assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"rotated now");
}

#[test]
fn acl_grant_gives_named_user_access() {
    for scheme in [Scheme::SharedCaps, Scheme::PerUser] {
        let world = World::new(CryptoPolicy::Sharoes, scheme);
        let mut alice = world.client(ALICE);

        // carol (other, 0600 file → no access after tightening).
        alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o600)).unwrap();
        let mut carol = world.client(CAROL);
        assert!(carol.read("/home/alice/notes.txt").is_err());

        // Named-user ACL entry for carol.
        let mut acl = Acl::empty();
        acl.set_user(CAROL, Perm::R);
        alice.set_acl("/home/alice/notes.txt", acl).unwrap();

        let mut carol2 = world.client(CAROL);
        assert_eq!(carol2.read("/home/alice/notes.txt").unwrap(), b"alice's notes", "{scheme:?}");
        // bob still locked out.
        let mut bob = world.client(BOB);
        assert!(bob.read("/home/alice/notes.txt").is_err());
    }
}

#[test]
fn acl_removal_revokes() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o600)).unwrap();
    let mut acl = Acl::empty();
    acl.set_user(CAROL, Perm::R);
    alice.set_acl("/home/alice/notes.txt", acl).unwrap();
    let mut carol = world.client(CAROL);
    assert!(carol.read("/home/alice/notes.txt").is_ok());

    // Remove the entry: immediate revocation re-keys.
    let gen_before = alice.getattr("/home/alice/notes.txt").unwrap().generation;
    alice.set_acl("/home/alice/notes.txt", Acl::empty()).unwrap();
    let st = alice.getattr("/home/alice/notes.txt").unwrap();
    assert_eq!(st.generation, gen_before + 1);
    let mut carol2 = world.client(CAROL);
    assert!(carol2.read("/home/alice/notes.txt").is_err());
    assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
}

#[test]
fn directory_revocation_rotates_table_keys() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let mut bob = world.client(BOB);
    // bob can list /home/alice (0755).
    assert!(bob.readdir("/home/alice").is_ok());

    alice.chmod("/home/alice", Mode::from_octal(0o700)).unwrap();
    let mut bob2 = world.client(BOB);
    let err = bob2.readdir("/home/alice").unwrap_err();
    assert!(matches!(err, CoreError::PermissionDenied { .. }), "{err}");
    assert!(bob2.read("/home/alice/notes.txt").is_err());

    // alice still works, and can re-grant.
    assert!(alice.readdir("/home/alice").is_ok());
    alice.chmod("/home/alice", Mode::from_octal(0o755)).unwrap();
    let mut bob3 = world.client(BOB);
    assert!(bob3.readdir("/home/alice").is_ok());
    assert_eq!(bob3.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
}

#[test]
fn chmod_to_exec_only_changes_directory_semantics() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    // /home/alice/listing is 0744 (others list, no traverse). Flip to 0711.
    alice.chmod("/home/alice/listing", Mode::from_octal(0o711)).unwrap();
    let mut bob = world.client(BOB);
    assert!(bob.readdir("/home/alice/listing").is_err());
    assert_eq!(bob.read("/home/alice/listing/seen").unwrap(), b"listed");
}

#[test]
fn revoked_generation_moves_data_view() {
    // After immediate revocation the old ciphertext blocks are deleted from
    // the SSP — a revoked reader with a cached DEK has nothing to decrypt.
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let objects_before = world.server.store().object_count();
    let mut alice = world.client(ALICE);
    alice.chmod("/home/alice/notes.txt", Mode::from_octal(0o600)).unwrap();
    // Same number of data objects (old deleted, new written).
    let objects_after = world.server.store().object_count();
    assert_eq!(objects_before, objects_after);
}

#[test]
fn group_membership_revocation_via_rekey() {
    // Removing a user from a group (enterprise-side) revokes future access
    // once the owner re-keys (paper footnote 5).
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut bob = world.client(BOB);
    assert_eq!(bob.read("/shared/board.txt").unwrap(), b"minutes");

    // Enterprise removes bob from staff, then the owner re-keys by touching
    // permissions (chmod to the same-but-tighter mode triggers revocation
    // because bob's effective perm shrinks).
    let mut db = (*world.db).clone();
    db.remove_member(common::STAFF, BOB).unwrap();
    let db = std::sync::Arc::new(db);

    // alice's client must use the updated directory.
    let transport = sharoes_net::InMemoryTransport::new(std::sync::Arc::clone(&world.server) as _);
    let mut alice = sharoes_core::SharoesClient::with_rng(
        Box::new(transport),
        world.config.clone(),
        std::sync::Arc::clone(&db),
        std::sync::Arc::clone(&world.pki),
        world.ring.identity(ALICE).unwrap(),
        std::sync::Arc::clone(&world.pool),
        sharoes_crypto::HmacDrbg::from_seed_u64(0xA11CE),
    );
    alice.mount().unwrap();
    alice.chmod("/shared/board.txt", Mode::from_octal(0o660)).unwrap();

    // bob, now outside the group (fresh client with updated db), is out.
    let transport = sharoes_net::InMemoryTransport::new(std::sync::Arc::clone(&world.server) as _);
    let mut bob2 = sharoes_core::SharoesClient::with_rng(
        Box::new(transport),
        world.config.clone(),
        db,
        std::sync::Arc::clone(&world.pki),
        world.ring.identity(BOB).unwrap(),
        std::sync::Arc::clone(&world.pool),
        sharoes_crypto::HmacDrbg::from_seed_u64(0xB0B),
    );
    bob2.mount().unwrap();
    assert!(bob2.read("/shared/board.txt").is_err());
}
