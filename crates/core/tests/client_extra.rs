//! Additional client coverage: group-addressed split entries, metadata
//! refresh, rename restrictions, cache behaviour, and edge cases.

mod common;

use common::{World, ALICE, BOB};
use sharoes_core::{ClientConfig, CoreError, CryptoPolicy, Scheme, SharoesClient};
use sharoes_crypto::HmacDrbg;
use sharoes_fs::{Gid, LocalFs, Mode, Uid, UserDb, ROOT_UID};
use std::sync::Arc;

/// A deployment where THREE staff members diverge to the Group class at
/// /team (owned by alice): the migration emits one group-addressed split
/// entry instead of three per-user ones, and members must recover the group
/// key in-band at mount to follow it.
fn group_split_world() -> (World, Vec<Uid>) {
    let mut db = UserDb::new();
    db.add_group(Gid(0), "wheel").unwrap();
    db.add_group(Gid(100), "staff").unwrap();
    db.add_group(Gid(200), "outsiders").unwrap();
    db.add_user(ROOT_UID, "root", Gid(0)).unwrap();
    let staff: Vec<Uid> = (1..=4).map(Uid).collect();
    for (i, &uid) in staff.iter().enumerate() {
        db.add_user(uid, &format!("s{i}"), Gid(100)).unwrap();
    }
    // Four outsiders outnumber the three non-owner staff members, so the
    // continuation of "/"'s Other class into /team is Other — and all three
    // staff members diverge to Group together, triggering the
    // group-addressed split entry (one entry under the group public key
    // instead of three per-user ones).
    for i in 0..4u32 {
        db.add_user(Uid(10 + i), &format!("o{i}"), Gid(200)).unwrap();
    }

    let mut fs = LocalFs::new(db, Gid(0), Mode::from_octal(0o755));
    let m = Mode::from_octal;
    // /team owned by s0, group staff, group-accessible only.
    fs.mkdir(ROOT_UID, "/team", m(0o750)).unwrap();
    fs.chown(ROOT_UID, "/team", staff[0], Gid(100)).unwrap();
    fs.create(staff[0], "/team/plan.txt", m(0o640)).unwrap();
    fs.write(staff[0], "/team/plan.txt", b"group plan").unwrap();

    let world = World::from_fs(fs, CryptoPolicy::Sharoes, Scheme::SharedCaps, 0x97); // seed
    (world, staff)
}

#[test]
fn group_addressed_split_entries_route_members() {
    let (world, staff) = group_split_world();

    // Structural check: a group-addressed split entry exists for /team.
    let mut probe = world.client(staff[0]);
    let team_inode = probe.getattr("/team").unwrap().inode;
    let group_slot = sharoes_net::ObjectKey::metadata(
        team_inode,
        sharoes_core::ids::split_group_view(team_inode, Gid(100)),
    );
    assert!(
        world.server.store().get(&group_slot).is_some(),
        "expected a group-addressed split entry for /team"
    );

    // Functional: every staff member reaches the Group CAP through the
    // in-band group key (recovered from their group key block at mount),
    // while outsiders cannot traverse at all (0750).
    for &uid in &staff[1..] {
        let mut member = world.client(uid);
        assert_eq!(
            member.read("/team/plan.txt").unwrap(),
            b"group plan",
            "staff member {uid} must reach the Group CAP"
        );
        // Group CAP for 0640 file has no write.
        assert!(member.write("/team/plan.txt", b"nope").is_err());
    }
    // The owner keeps full control via their Owner CAP.
    let mut owner = world.client(staff[0]);
    owner.write_file("/team/plan.txt", b"group plan v2").unwrap();
    let mut member = world.client(staff[2]);
    assert_eq!(member.read("/team/plan.txt").unwrap(), b"group plan v2");

    // Outsiders follow the (keyless) Other continuation and are denied.
    let mut outsider = world.client(Uid(10));
    assert!(outsider.read("/team/plan.txt").is_err());
}

#[test]
fn fsync_metadata_refreshes_size() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.create("/home/alice/grow.txt", Mode::from_octal(0o644)).unwrap();
    alice.write_file("/home/alice/grow.txt", &vec![7u8; 5000]).unwrap();

    // Per Figure 8, close updates data only: a fresh client still sees the
    // creation-time metadata size.
    let mut fresh = world.client(ALICE);
    assert_eq!(fresh.getattr("/home/alice/grow.txt").unwrap().size, 0);
    // The data itself is authoritative.
    assert_eq!(fresh.read("/home/alice/grow.txt").unwrap().len(), 5000);

    // The owner can push attributes explicitly.
    alice.fsync_metadata("/home/alice/grow.txt").unwrap();
    let mut fresh2 = world.client(ALICE);
    let st = fresh2.getattr("/home/alice/grow.txt").unwrap();
    assert_eq!(st.size, 5000);
    assert_eq!(st.nblocks, 2); // 5000 bytes at 4096 block size

    // Non-owners cannot.
    let mut bob = world.client(BOB);
    assert!(matches!(
        bob.fsync_metadata("/home/alice/notes.txt").unwrap_err(),
        CoreError::PermissionDenied { .. }
    ));
}

#[test]
fn cross_directory_rename_restricted() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.mkdir("/home/alice/a", Mode::from_octal(0o755)).unwrap();
    alice.mkdir("/home/alice/b", Mode::from_octal(0o755)).unwrap();
    alice.create("/home/alice/a/f", Mode::from_octal(0o644)).unwrap();
    let err = alice.rename("/home/alice/a/f", "/home/alice/b/f").unwrap_err();
    assert!(matches!(err, CoreError::PermissionDenied { .. }), "{err}");
    // Same-directory rename still works afterwards.
    alice.rename("/home/alice/a/f", "/home/alice/a/g").unwrap();
    assert!(alice.getattr("/home/alice/a/g").is_ok());
}

#[test]
fn empty_and_single_byte_files() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.create("/home/alice/empty", Mode::from_octal(0o644)).unwrap();
    assert_eq!(alice.read("/home/alice/empty").unwrap(), b"");
    alice.write_file("/home/alice/empty", b"x").unwrap();
    assert_eq!(alice.read("/home/alice/empty").unwrap(), b"x");
    alice.write_file("/home/alice/empty", b"").unwrap();
    assert_eq!(alice.read("/home/alice/empty").unwrap(), b"");
    let mut bob = world.client(BOB);
    assert_eq!(bob.read("/home/alice/empty").unwrap(), b"");
}

#[test]
fn exact_block_boundary_files() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    for size in [4096usize, 8192, 4095, 4097] {
        let path = format!("/home/alice/b{size}");
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        alice.create(&path, Mode::from_octal(0o644)).unwrap();
        alice.write_file(&path, &data).unwrap();
        assert_eq!(alice.read(&path).unwrap(), data, "size {size}");
        let mut fresh = world.client(ALICE);
        assert_eq!(fresh.read(&path).unwrap(), data, "cold size {size}");
    }
}

#[test]
fn deep_nesting_resolves() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let mut path = "/home/alice".to_string();
    for depth in 0..8 {
        path = format!("{path}/d{depth}");
        alice.mkdir(&path, Mode::from_octal(0o755)).unwrap();
    }
    let file = format!("{path}/leaf.txt");
    alice.create(&file, Mode::from_octal(0o644)).unwrap();
    alice.write_file(&file, b"deep").unwrap();
    let mut bob = world.client(BOB);
    assert_eq!(bob.read(&file).unwrap(), b"deep");
}

#[test]
fn bounded_cache_still_correct() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut config = ClientConfig::test_with(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    config.cache_capacity = Some(512); // pathologically small
    let mut alice = world.client_with_config(ALICE, config);
    // Everything still works; it is just slower (more refetches).
    assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
    alice.create("/home/alice/small-cache.txt", Mode::from_octal(0o644)).unwrap();
    alice.write_file("/home/alice/small-cache.txt", &vec![3u8; 10_000]).unwrap();
    assert_eq!(alice.read("/home/alice/small-cache.txt").unwrap(), vec![3u8; 10_000]);
    let stats = alice.cache_stats();
    assert!(stats.evictions > 0, "tiny cache must evict");
}

#[test]
fn write_then_grant_then_read_by_new_reader() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    alice.create("/home/alice/secret-draft", Mode::from_octal(0o600)).unwrap();
    alice.write_file("/home/alice/secret-draft", b"v1 private").unwrap();
    let mut bob = world.client(BOB);
    assert!(bob.read("/home/alice/secret-draft").is_err());
    // Grant group read after content exists: the existing DEK is
    // re-provisioned into the group CAP (no re-encryption needed for grants).
    let gen_before = alice.getattr("/home/alice/secret-draft").unwrap().generation;
    alice.chmod("/home/alice/secret-draft", Mode::from_octal(0o640)).unwrap();
    assert_eq!(
        alice.getattr("/home/alice/secret-draft").unwrap().generation,
        gen_before,
        "grants must not re-key"
    );
    let mut bob2 = world.client(BOB);
    assert_eq!(bob2.read("/home/alice/secret-draft").unwrap(), b"v1 private");
}

#[test]
fn unmounted_operations_fail_cleanly() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let transport = sharoes_net::InMemoryTransport::new(Arc::clone(&world.server) as _);
    let mut client = SharoesClient::with_rng(
        Box::new(transport),
        world.config.clone(),
        Arc::clone(&world.db),
        Arc::clone(&world.pki),
        world.ring.identity(ALICE).unwrap(),
        Arc::clone(&world.pool),
        HmacDrbg::from_seed_u64(1),
    );
    for err in [
        client.read("/x").unwrap_err(),
        client.getattr("/x").unwrap_err(),
        client.readdir("/").unwrap_err(),
        client.mkdir("/x", Mode::from_octal(0o755)).unwrap_err(),
        client.unlink("/x").unwrap_err(),
    ] {
        assert!(matches!(err, CoreError::NotMounted), "{err}");
    }
}

#[test]
fn readdir_sees_other_clients_creates() {
    // The lookup-miss revalidation also applies to listing freshness via
    // table refetch on invalidation; a fresh mount always sees the truth.
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let mut bob = world.client(BOB);
    let before = bob.readdir("/shared").unwrap().len();
    alice.create("/shared/new-entry", Mode::from_octal(0o664)).unwrap();
    // bob resolves the new entry by name despite his stale cached table.
    assert!(bob.getattr("/shared/new-entry").is_ok());
    let mut bob_fresh = world.client(BOB);
    assert_eq!(bob_fresh.readdir("/shared").unwrap().len(), before + 1);
}
