//! Untrusted-SSP threat model (paper §VII): the SSP is trusted to store and
//! serve bytes, but not with confidentiality or access control. These tests
//! play a malicious SSP: inspecting, tampering, swapping, and forging.

mod common;

use common::{World, ALICE, BOB};
use sharoes_core::{CoreError, CryptoPolicy, Scheme};
use sharoes_net::ObjectKey;

/// Collects all stored values by brute-forcing through the public API is
/// impossible (keys are opaque hashes) — which is itself the point. For the
/// *test*, we re-derive the keys the client would use and fetch those.
fn fetch_all_known(world: &World, inode: u64) -> Vec<Vec<u8>> {
    use sharoes_core::{ClassTag, ViewId};
    let mut out = Vec::new();
    let store = world.server.store();
    for class in [ClassTag::Owner, ClassTag::Group, ClassTag::Other] {
        let view = ViewId::Class(class).tag(inode);
        if let Some(v) = store.get(&ObjectKey::metadata(inode, view)) {
            out.push(v);
        }
        if let Some(v) = store.get(&ObjectKey::data(inode, view, 0)) {
            out.push(v);
        }
    }
    for generation in 0..4u64 {
        let dview = sharoes_core::ids::data_view(inode, generation);
        for block in [0u32, 1, u32::MAX] {
            if let Some(v) = store.get(&ObjectKey::data(inode, dview, block)) {
                out.push(v);
            }
        }
    }
    out
}

#[test]
fn ssp_stores_no_plaintext_under_sharoes() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let blobs = fetch_all_known(&world, inode);
    assert!(!blobs.is_empty());
    for blob in &blobs {
        assert!(
            !blob.windows(13).any(|w| w == b"alice's notes"),
            "file plaintext visible at the SSP"
        );
    }
    // Directory names are likewise invisible in the parent's stored bytes.
    let parent_inode = alice.getattr("/home/alice").unwrap().inode;
    for blob in fetch_all_known(&world, parent_inode) {
        assert!(!blob.windows(9).any(|w| w == b"notes.txt"), "entry name visible at the SSP");
    }
}

#[test]
fn no_enc_baseline_leaks_everything_by_design() {
    // Sanity check of the test methodology: the NO-ENC baseline *does* leak.
    let world = World::new(CryptoPolicy::NoEncMdD, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    // Per-user layout for baselines.
    let view = sharoes_core::ViewId::User(ALICE.0).tag(inode);
    let dview = sharoes_core::ids::data_view(inode, 0);
    let block = world.server.store().get(&ObjectKey::data(inode, dview, 0)).expect("block exists");
    assert!(block.windows(13).any(|w| w == b"alice's notes"));
    let _ = view;
}

#[test]
fn tampered_data_block_detected() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let dview = sharoes_core::ids::data_view(inode, 0);
    let key = ObjectKey::data(inode, dview, 0);
    let mut blob = world.server.store().get(&key).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0xFF;
    world.server.store().put(key, blob);

    let mut bob = world.client(BOB);
    let err = bob.read("/home/alice/notes.txt").unwrap_err();
    assert!(matches!(err, CoreError::TamperDetected(_)), "{err}");
}

#[test]
fn tampered_metadata_detected() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let view = sharoes_core::ViewId::Class(sharoes_core::ClassTag::Group).tag(inode);
    let key = ObjectKey::metadata(inode, view);
    let mut blob = world.server.store().get(&key).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0x01;
    world.server.store().put(key, blob);

    let mut bob = world.client(BOB);
    let err = bob.getattr("/home/alice/notes.txt").unwrap_err();
    assert!(matches!(err, CoreError::TamperDetected(_) | CoreError::Corrupt(_)), "{err}");
}

#[test]
fn object_swapping_between_slots_detected() {
    // A malicious SSP serving object A's (validly signed) bytes for object B
    // must be caught: signatures bind the slot (inode, view, block).
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let notes = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let board = alice.getattr("/shared/board.txt").unwrap().inode;

    let notes_key = ObjectKey::data(notes, sharoes_core::ids::data_view(notes, 0), 0);
    let board_key = ObjectKey::data(board, sharoes_core::ids::data_view(board, 0), 0);
    let board_blob = world.server.store().get(&board_key).unwrap();
    world.server.store().put(notes_key, board_blob);

    let mut bob = world.client(BOB);
    let err = bob.read("/home/alice/notes.txt").unwrap_err();
    assert!(matches!(err, CoreError::TamperDetected(_)), "{err}");
}

#[test]
fn reader_forging_write_is_detected() {
    // §II-B: "any user who has read permissions, thus possesses the DEK, can
    // attempt to write to that file as well ... signing and verification is
    // one such technique" to catch it.
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let dview = sharoes_core::ids::data_view(inode, 0);
    let key = ObjectKey::data(inode, dview, 0);

    // A reader (who has the DEK) re-encrypts different content and plants it
    // at the SSP — but cannot produce a valid DSK signature, so we simulate
    // the strongest reader attack: replace ciphertext, keep the old
    // signature envelope.
    let blob = world.server.store().get(&key).unwrap();
    let mut sealed =
        <sharoes_core::SealedObject as sharoes_net::WireRead>::from_wire(&blob).unwrap();
    // Forge: flip ciphertext bits (the reader could also produce a fully
    // valid AES-CTR encryption of chosen text; either way the signature
    // cannot match).
    if !sealed.ciphertext.is_empty() {
        let mid = sealed.ciphertext.len() / 2;
        sealed.ciphertext[mid] ^= 0xAA;
    }
    world.server.store().put(key, sharoes_net::WireWrite::to_wire(&sealed));

    let mut bob = world.client(BOB);
    assert!(matches!(bob.read("/home/alice/notes.txt").unwrap_err(), CoreError::TamperDetected(_)));
}

#[test]
fn block_reordering_within_a_file_detected() {
    // The manifest hashes are positional: a malicious SSP swapping two
    // (individually valid) ciphertext blocks of the same file is caught.
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let big: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    alice.create("/home/alice/big.bin", sharoes_fs::Mode::from_octal(0o644)).unwrap();
    alice.write_file("/home/alice/big.bin", &big).unwrap();
    let inode = alice.getattr("/home/alice/big.bin").unwrap().inode;
    let dview = sharoes_core::ids::data_view(inode, 0);

    let k0 = ObjectKey::data(inode, dview, 0);
    let k1 = ObjectKey::data(inode, dview, 1);
    let b0 = world.server.store().get(&k0).unwrap();
    let b1 = world.server.store().get(&k1).unwrap();
    world.server.store().put(k0, b1);
    world.server.store().put(k1, b0);

    let mut bob = world.client(BOB);
    assert!(matches!(bob.read("/home/alice/big.bin").unwrap_err(), CoreError::TamperDetected(_)));
}

#[test]
fn replayed_manifest_with_fresh_blocks_detected() {
    // A writer updates a file; the SSP replays the OLD blocks alongside the
    // NEW manifest (or vice versa) — hash mismatch either way.
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let dview = sharoes_core::ids::data_view(inode, 0);
    let old_block = world.server.store().get(&ObjectKey::data(inode, dview, 0)).unwrap();

    alice.write_file("/home/alice/notes.txt", b"completely new contents").unwrap();
    // SSP serves the stale block under the fresh manifest.
    world.server.store().put(ObjectKey::data(inode, dview, 0), old_block);

    let mut bob = world.client(BOB);
    assert!(matches!(bob.read("/home/alice/notes.txt").unwrap_err(), CoreError::TamperDetected(_)));
}

#[test]
fn metadata_rollback_detected_within_session() {
    // The SSP replays an OLD (validly signed) metadata replica after the
    // owner rewrote it: the session freshness ledger catches the version
    // regression. (A tiny cache forces refetches.)
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut config = world.config.clone();
    config.cache_capacity = Some(1);
    let mut alice = world.client_with_config(ALICE, config);

    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let view = sharoes_core::ViewId::Class(sharoes_core::ClassTag::Owner).tag(inode);
    let key = ObjectKey::metadata(inode, view);
    let stale = world.server.store().get(&key).unwrap();

    // Owner rewrites metadata (version bumps) and re-reads it (records v+1).
    alice.chmod("/home/alice/notes.txt", sharoes_fs::Mode::from_octal(0o640)).unwrap();
    alice.getattr("/home/alice/notes.txt").unwrap();

    // SSP replays the stale replica.
    world.server.store().put(key, stale);
    let err = alice.getattr("/home/alice/notes.txt").unwrap_err();
    assert!(matches!(&err, CoreError::TamperDetected(msg) if msg.contains("rolled back")), "{err}");
}

#[test]
fn manifest_rollback_detected_within_session() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut config = world.config.clone();
    config.cache_capacity = Some(1);
    let mut alice = world.client_with_config(ALICE, config);

    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let dview = sharoes_core::ids::data_view(inode, 0);
    let mkey = ObjectKey::data(inode, dview, u32::MAX);
    let stale_manifest = world.server.store().get(&mkey).unwrap();
    let stale_block = world.server.store().get(&ObjectKey::data(inode, dview, 0)).unwrap();

    // A write bumps the manifest version; a read observes it.
    alice.write_file("/home/alice/notes.txt", b"version two").unwrap();
    assert_eq!(alice.read("/home/alice/notes.txt").unwrap(), b"version two");

    // SSP replays the entire old (internally consistent!) data state.
    world.server.store().put(mkey, stale_manifest);
    world.server.store().put(ObjectKey::data(inode, dview, 0), stale_block);
    let err = alice.read("/home/alice/notes.txt").unwrap_err();
    assert!(matches!(&err, CoreError::TamperDetected(msg) if msg.contains("rolled back")), "{err}");

    // A FRESH session has no ledger and accepts the replay — exactly the
    // residual gap the paper defers to SUNDR-style fork consistency.
    let mut fresh = world.client(ALICE);
    assert_eq!(fresh.read("/home/alice/notes.txt").unwrap(), b"alice's notes");
}

#[test]
fn deletion_is_detected_as_missing_not_garbage() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let dview = sharoes_core::ids::data_view(inode, 0);
    world.server.store().delete(&ObjectKey::data(inode, dview, u32::MAX));

    let mut bob = world.client(BOB);
    let err = bob.read("/home/alice/notes.txt").unwrap_err();
    assert!(matches!(err, CoreError::Corrupt(_)), "{err}");
}

#[test]
fn stolen_superblock_is_useless_to_others() {
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    // The SSP hands alice's superblock to bob; bob's private key cannot open
    // it. (Simulated by swapping the stored superblocks.)
    let alice_slot = ObjectKey::superblock(sharoes_core::ids::superblock_view(ALICE));
    let bob_slot = ObjectKey::superblock(sharoes_core::ids::superblock_view(BOB));
    let alice_sb = world.server.store().get(&alice_slot).unwrap();
    world.server.store().put(bob_slot, alice_sb);

    let transport = sharoes_net::InMemoryTransport::new(std::sync::Arc::clone(&world.server) as _);
    let mut bob = sharoes_core::SharoesClient::with_rng(
        Box::new(transport),
        world.config.clone(),
        std::sync::Arc::clone(&world.db),
        std::sync::Arc::clone(&world.pki),
        world.ring.identity(BOB).unwrap(),
        std::sync::Arc::clone(&world.pool),
        sharoes_crypto::HmacDrbg::from_seed_u64(1),
    );
    assert!(bob.mount().is_err());
}

#[test]
fn ciphertexts_differ_per_replica() {
    // Two CAP replicas of the same metadata must not be byte-identical
    // (separate MEKs + fresh IVs), or the SSP could correlate contents.
    let world = World::new(CryptoPolicy::Sharoes, Scheme::SharedCaps);
    let mut alice = world.client(ALICE);
    let inode = alice.getattr("/home/alice/notes.txt").unwrap().inode;
    let store = world.server.store();
    let owner = store
        .get(&ObjectKey::metadata(
            inode,
            sharoes_core::ViewId::Class(sharoes_core::ClassTag::Owner).tag(inode),
        ))
        .unwrap();
    let group = store
        .get(&ObjectKey::metadata(
            inode,
            sharoes_core::ViewId::Class(sharoes_core::ClassTag::Group).tag(inode),
        ))
        .unwrap();
    assert_ne!(owner, group);
}
