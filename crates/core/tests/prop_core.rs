//! Property tests for core data structures: metadata bodies, directory
//! tables, CAP invariants, and hostile-bytes safety.

use proptest::prelude::*;
use sharoes_core::cap::{dir_cap, downgrade, file_cap, TableAccess};
use sharoes_core::scheme::{Layout, ObjectAttrs};
use sharoes_core::{CryptoPolicy, Keyring, Scheme};
use sharoes_fs::{Gid, Mode, Uid, UserDb};
use std::sync::OnceLock;
use sharoes_core::dirtable::{ChildRef, DirTable};
use sharoes_core::metadata::{AclEntryWire, MetadataBody, SealedObject};
use sharoes_core::scheme::SplitEntry;
use sharoes_core::superblock::Superblock;
use sharoes_crypto::{HmacDrbg, SymKey};
use sharoes_fs::{NodeKind, Perm};
use sharoes_net::{WireRead, WireWrite};

fn arb_perm() -> impl Strategy<Value = Perm> {
    (any::<bool>(), any::<bool>(), any::<bool>())
        .prop_map(|(read, write, exec)| Perm { read, write, exec })
}

fn arb_body() -> impl Strategy<Value = MetadataBody> {
    (
        any::<u64>(),
        any::<bool>(),
        any::<u32>(),
        any::<u32>(),
        0u32..0o1000,
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<bool>(),
        prop::collection::vec((any::<bool>(), any::<u32>(), 0u8..8), 0..4),
        prop::option::of(any::<[u8; 16]>()),
    )
        .prop_map(
            |(inode, is_dir, owner, group, mode, size, nblocks, generation, rekey, acl, dek)| {
                let mut body = MetadataBody::bare(
                    inode,
                    if is_dir { NodeKind::Dir } else { NodeKind::File },
                    owner,
                    group,
                    mode,
                );
                body.size = size;
                body.nblocks = nblocks;
                body.generation = generation;
                body.rekey_pending = rekey;
                body.acl = acl
                    .into_iter()
                    .map(|(is_group, id, bits)| AclEntryWire { is_group, id, bits })
                    .collect();
                body.dek = dek.map(SymKey);
                body
            },
        )
}

fn arb_child() -> impl Strategy<Value = ChildRef> {
    (
        any::<u64>(),
        any::<bool>(),
        any::<[u8; 16]>(),
        prop::option::of(any::<[u8; 16]>()),
        any::<bool>(),
    )
        .prop_map(|(inode, is_dir, view, mek, split)| ChildRef {
            inode,
            kind: if is_dir { NodeKind::Dir } else { NodeKind::File },
            view,
            mek: mek.map(SymKey),
            mvk: None,
            split,
        })
}

fn arb_entries() -> impl Strategy<Value = Vec<(String, ChildRef)>> {
    prop::collection::btree_map("[a-zA-Z0-9_.-]{1,24}", arb_child(), 0..12)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn metadata_body_roundtrips(body in arb_body()) {
        let bytes = body.to_wire();
        let decoded = MetadataBody::from_wire(&bytes).unwrap();
        prop_assert_eq!(decoded.inode, body.inode);
        prop_assert_eq!(decoded.kind, body.kind);
        prop_assert_eq!(decoded.owner, body.owner);
        prop_assert_eq!(decoded.group, body.group);
        prop_assert_eq!(decoded.mode, body.mode);
        prop_assert_eq!(decoded.size, body.size);
        prop_assert_eq!(decoded.generation, body.generation);
        prop_assert_eq!(decoded.rekey_pending, body.rekey_pending);
        prop_assert_eq!(decoded.acl, body.acl);
        prop_assert_eq!(decoded.dek, body.dek);
    }

    #[test]
    fn dirtable_views_roundtrip(entries in arb_entries(), tek in any::<[u8; 16]>(), seed in any::<u64>()) {
        let tek = SymKey(tek);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        for table in [
            DirTable::names_only(&entries),
            DirTable::full(&entries),
            DirTable::exec_only(&entries, &tek, &mut rng),
        ] {
            let bytes = table.to_wire();
            prop_assert_eq!(DirTable::from_wire(&bytes).unwrap(), table);
        }
    }

    #[test]
    fn full_view_lookup_finds_every_entry(entries in arb_entries()) {
        let table = DirTable::full(&entries);
        for (name, child) in &entries {
            let found = table.lookup(name, None).unwrap().unwrap();
            prop_assert_eq!(&found, child);
        }
        prop_assert_eq!(table.list().len(), entries.len());
    }

    #[test]
    fn exec_only_lookup_by_exact_name_only(
        entries in arb_entries(),
        tek in any::<[u8; 16]>(),
        probe in "[a-zA-Z0-9_.-]{1,24}",
        seed in any::<u64>(),
    ) {
        let tek = SymKey(tek);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let table = DirTable::exec_only(&entries, &tek, &mut rng);
        // Every real name opens; names are never listable.
        for (name, child) in &entries {
            let found = table.lookup(name, Some(&tek)).unwrap().unwrap();
            prop_assert_eq!(found.inode, child.inode);
        }
        prop_assert!(table.list().is_empty());
        // A probe that is not an entry returns None.
        if !entries.iter().any(|(n, _)| n == &probe) {
            prop_assert!(table.lookup(&probe, Some(&tek)).unwrap().is_none());
        }
        // No plaintext names in the serialization.
        let bytes = table.to_wire();
        for (name, _) in &entries {
            if name.len() >= 4 {
                prop_assert!(
                    !bytes.windows(name.len()).any(|w| w == name.as_bytes()),
                    "leaked name {name}"
                );
            }
        }
    }

    #[test]
    fn cap_tables_are_total_and_consistent(perm in arb_perm()) {
        // Every permission either has a CAP or downgrades to one that does.
        for is_dir in [true, false] {
            let direct_ok = if is_dir { dir_cap(perm).is_ok() } else { file_cap(perm).is_ok() };
            let softened = downgrade(perm, is_dir);
            let softened_ok =
                if is_dir { dir_cap(softened).is_ok() } else { file_cap(softened).is_ok() };
            prop_assert!(softened_ok, "downgrade({perm}, {is_dir}) still unsupported");
            // Downgrade never grants anything new.
            prop_assert!(perm.covers(softened));
            if direct_ok {
                prop_assert_eq!(softened, perm, "supported perms must not change");
            }
        }
    }

    #[test]
    fn dir_cap_monotonicity(perm in arb_perm()) {
        // If a permission grants the signing key, it must also grant the
        // table key (writers re-encrypt), and rwx must be Full.
        if let Ok(cap) = dir_cap(perm) {
            if cap.dsk {
                prop_assert!(cap.dek);
                prop_assert_eq!(cap.table, TableAccess::Full);
            }
            if cap.table != TableAccess::None {
                prop_assert!(cap.dek, "table access requires the table key");
            }
        }
    }

    #[test]
    fn sealed_object_roundtrips(ct in prop::collection::vec(any::<u8>(), 0..512), sig in prop::option::of(prop::collection::vec(any::<u8>(), 0..128))) {
        let obj = SealedObject { ciphertext: ct, signature: sig };
        prop_assert_eq!(SealedObject::from_wire(&obj.to_wire()).unwrap(), obj);
    }

    #[test]
    fn split_entry_roundtrips(view in any::<[u8; 16]>(), mek in prop::option::of(any::<[u8; 16]>())) {
        let entry = SplitEntry { view, mek: mek.map(SymKey), mvk: None };
        prop_assert_eq!(SplitEntry::from_wire(&entry.to_wire()).unwrap(), entry);
    }

    #[test]
    fn continuation_covers_every_population_member(
        parent_owner in 0u32..6,
        parent_group in 1u32..4,
        parent_mode in 0u32..0o1000,
        child_owner in 0u32..6,
        child_group in 1u32..4,
        class_idx in 0usize..3,
    ) {
        // THE Scheme-2 routing invariant: for any parent class, every user
        // in its population either follows the row continuation or appears
        // in the divergent (split-entry) set — nobody is stranded.
        fn fixture() -> &'static (UserDb, Keyring) {
            static FX: OnceLock<(UserDb, Keyring)> = OnceLock::new();
            FX.get_or_init(|| {
                let mut db = UserDb::new();
                db.add_group(Gid(1), "g1").unwrap();
                db.add_group(Gid(2), "g2").unwrap();
                db.add_group(Gid(3), "g3").unwrap();
                for i in 0..6u32 {
                    db.add_user(Uid(i), &format!("u{i}"), Gid(1 + i % 3)).unwrap();
                }
                let mut rng = sharoes_crypto::HmacDrbg::from_seed_u64(0xC0);
                let ring = Keyring::generate(&db, 512, &mut rng).unwrap();
                (db, ring)
            })
        }
        let (db, ring) = fixture();
        let pki = ring.public_directory();
        let layout = Layout {
            scheme: Scheme::SharedCaps,
            policy: CryptoPolicy::Sharoes,
            block_size: 4096,
            db,
            pki: &pki,
        };
        let parent = ObjectAttrs::new(
            10,
            sharoes_fs::NodeKind::Dir,
            Uid(parent_owner),
            Gid(parent_group),
            Mode::from_octal(parent_mode & 0o777),
        );
        let child = ObjectAttrs::new(
            11,
            NodeKind::File,
            Uid(child_owner),
            Gid(child_group),
            Mode::from_octal(0o640),
        );
        let classes = [
            sharoes_core::ClassTag::Owner,
            sharoes_core::ClassTag::Group,
            sharoes_core::ClassTag::Other,
        ];
        let parent_class = classes[class_idx];
        let (cont, divergent) = layout.continuation(&parent, parent_class, &child);
        for uid in layout.population(&parent, parent_class) {
            let true_class = child.class_of(uid, db);
            if true_class == cont {
                prop_assert!(
                    !divergent.iter().any(|(u, _)| *u == uid),
                    "{uid} both continues and diverges"
                );
            } else {
                prop_assert!(
                    divergent.contains(&(uid, true_class)),
                    "{uid} (class {true_class:?}) stranded: continuation {cont:?}, divergent {divergent:?}"
                );
            }
        }
    }

    #[test]
    fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = MetadataBody::from_wire(&bytes);
        let _ = DirTable::from_wire(&bytes);
        let _ = SealedObject::from_wire(&bytes);
        let _ = SplitEntry::from_wire(&bytes);
        let _ = Superblock::from_wire(&bytes);
    }

    #[test]
    fn superblock_roundtrips(
        root_inode in any::<u64>(),
        root_view in any::<[u8; 16]>(),
        mek in prop::option::of(any::<[u8; 16]>()),
        block_size in 1u32..1_000_000,
        scheme_tag in 0u8..2,
    ) {
        let sb = Superblock {
            root_inode,
            root_view,
            root_mek: mek.map(SymKey),
            root_mvk: None,
            block_size,
            scheme_tag,
        };
        let decoded = Superblock::from_wire(&sb.to_wire()).unwrap();
        prop_assert_eq!(decoded.root_inode, sb.root_inode);
        prop_assert_eq!(decoded.root_view, sb.root_view);
        prop_assert_eq!(decoded.root_mek, sb.root_mek);
        prop_assert_eq!(decoded.block_size, sb.block_size);
        prop_assert_eq!(decoded.scheme_tag, sb.scheme_tag);
    }
}
