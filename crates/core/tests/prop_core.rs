//! Property tests for core data structures: metadata bodies, directory
//! tables, CAP invariants, and hostile-bytes safety.

use sharoes_core::cap::{dir_cap, downgrade, file_cap, TableAccess};
use sharoes_core::dirtable::{ChildRef, DirTable};
use sharoes_core::metadata::{AclEntryWire, MetadataBody, SealedObject};
use sharoes_core::scheme::{Layout, ObjectAttrs, SplitEntry};
use sharoes_core::superblock::Superblock;
use sharoes_core::{CryptoPolicy, Keyring, Scheme};
use sharoes_crypto::SymKey;
use sharoes_fs::{Gid, Mode, NodeKind, Perm, Uid, UserDb};
use sharoes_net::{WireRead, WireWrite};
use sharoes_testkit::prelude::*;
use std::sync::OnceLock;

fn perms() -> Gen<Perm> {
    Gen::from_fn(|t| Ok(Perm { read: t.bool(), write: t.bool(), exec: t.bool() }))
}

fn bodies() -> Gen<MetadataBody> {
    Gen::from_fn(|t| {
        let mut body = MetadataBody::bare(
            t.u64(),
            if t.bool() { NodeKind::Dir } else { NodeKind::File },
            t.u32(),
            t.u32(),
            t.u64_in(0, 0o1000) as u32,
        );
        body.size = t.u64();
        body.nblocks = t.u32();
        body.generation = t.u64();
        body.rekey_pending = t.bool();
        let n_acl = t.usize_in(0, 4);
        body.acl = (0..n_acl)
            .map(|_| AclEntryWire { is_group: t.bool(), id: t.u32(), bits: t.u64_in(0, 8) as u8 })
            .collect();
        body.dek = gen::option_of(gen::byte_arrays::<16>()).sample(t)?.map(SymKey);
        Ok(body)
    })
}

fn children() -> Gen<ChildRef> {
    Gen::from_fn(|t| {
        Ok(ChildRef {
            inode: t.u64(),
            kind: if t.bool() { NodeKind::Dir } else { NodeKind::File },
            view: gen::byte_arrays::<16>().sample(t)?,
            mek: gen::option_of(gen::byte_arrays::<16>()).sample(t)?.map(SymKey),
            mvk: None,
            split: t.bool(),
        })
    })
}

fn entry_lists() -> Gen<Vec<(String, ChildRef)>> {
    gen::entry_maps(gen::string_of(gen::NAMEY, 1..25), children(), 0..12)
}

prop! {
    #![cases(128)]

    fn metadata_body_roundtrips(body in bodies()) {
        let bytes = body.to_wire();
        let decoded = MetadataBody::from_wire(&bytes).unwrap();
        prop_assert_eq!(decoded.inode, body.inode);
        prop_assert_eq!(decoded.kind, body.kind);
        prop_assert_eq!(decoded.owner, body.owner);
        prop_assert_eq!(decoded.group, body.group);
        prop_assert_eq!(decoded.mode, body.mode);
        prop_assert_eq!(decoded.size, body.size);
        prop_assert_eq!(decoded.generation, body.generation);
        prop_assert_eq!(decoded.rekey_pending, body.rekey_pending);
        prop_assert_eq!(decoded.acl, body.acl);
        prop_assert_eq!(decoded.dek, body.dek);
    }

    fn dirtable_views_roundtrip(
        entries in entry_lists(),
        tek in gen::byte_arrays::<16>(),
        seed in gen::u64s(),
    ) {
        let tek = SymKey(tek);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        for table in [
            DirTable::names_only(&entries),
            DirTable::full(&entries),
            DirTable::exec_only(&entries, &tek, &mut rng),
        ] {
            let bytes = table.to_wire();
            prop_assert_eq!(DirTable::from_wire(&bytes).unwrap(), table);
        }
    }

    fn full_view_lookup_finds_every_entry(entries in entry_lists()) {
        let table = DirTable::full(&entries);
        for (name, child) in &entries {
            let found = table.lookup(name, None).unwrap().unwrap();
            prop_assert_eq!(&found, child);
        }
        prop_assert_eq!(table.list().len(), entries.len());
    }

    fn exec_only_lookup_by_exact_name_only(
        entries in entry_lists(),
        tek in gen::byte_arrays::<16>(),
        probe in gen::string_of(gen::NAMEY, 1..25),
        seed in gen::u64s(),
    ) {
        let tek = SymKey(tek);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let table = DirTable::exec_only(&entries, &tek, &mut rng);
        // Every real name opens; names are never listable.
        for (name, child) in &entries {
            let found = table.lookup(name, Some(&tek)).unwrap().unwrap();
            prop_assert_eq!(found.inode, child.inode);
        }
        prop_assert!(table.list().is_empty());
        // A probe that is not an entry returns None.
        if !entries.iter().any(|(n, _)| n == &probe) {
            prop_assert!(table.lookup(&probe, Some(&tek)).unwrap().is_none());
        }
        // No plaintext names in the serialization.
        let bytes = table.to_wire();
        for (name, _) in &entries {
            if name.len() >= 4 {
                prop_assert!(
                    !bytes.windows(name.len()).any(|w| w == name.as_bytes()),
                    "leaked name {name}"
                );
            }
        }
    }

    fn cap_tables_are_total_and_consistent(perm in perms()) {
        // Every permission either has a CAP or downgrades to one that does.
        for is_dir in [true, false] {
            let direct_ok = if is_dir { dir_cap(perm).is_ok() } else { file_cap(perm).is_ok() };
            let softened = downgrade(perm, is_dir);
            let softened_ok =
                if is_dir { dir_cap(softened).is_ok() } else { file_cap(softened).is_ok() };
            prop_assert!(softened_ok, "downgrade({perm}, {is_dir}) still unsupported");
            // Downgrade never grants anything new.
            prop_assert!(perm.covers(softened));
            if direct_ok {
                prop_assert_eq!(softened, perm, "supported perms must not change");
            }
        }
    }

    fn dir_cap_monotonicity(perm in perms()) {
        // If a permission grants the signing key, it must also grant the
        // table key (writers re-encrypt), and rwx must be Full.
        if let Ok(cap) = dir_cap(perm) {
            if cap.dsk {
                prop_assert!(cap.dek);
                prop_assert_eq!(cap.table, TableAccess::Full);
            }
            if cap.table != TableAccess::None {
                prop_assert!(cap.dek, "table access requires the table key");
            }
        }
    }

    fn sealed_object_roundtrips(
        ct in gen::vecs(gen::u8s(), 0..512),
        sig in gen::option_of(gen::vecs(gen::u8s(), 0..128)),
    ) {
        let obj = SealedObject { ciphertext: ct, signature: sig };
        prop_assert_eq!(SealedObject::from_wire(&obj.to_wire()).unwrap(), obj);
    }

    fn split_entry_roundtrips(
        view in gen::byte_arrays::<16>(),
        mek in gen::option_of(gen::byte_arrays::<16>()),
    ) {
        let entry = SplitEntry { view, mek: mek.map(SymKey), mvk: None };
        prop_assert_eq!(SplitEntry::from_wire(&entry.to_wire()).unwrap(), entry);
    }

    fn continuation_covers_every_population_member(
        parent_owner in gen::in_range(0u32..6),
        parent_group in gen::in_range(1u32..4),
        parent_mode in gen::in_range(0u32..0o1000),
        child_owner in gen::in_range(0u32..6),
        child_group in gen::in_range(1u32..4),
        class_idx in gen::in_range(0usize..3),
    ) {
        // THE Scheme-2 routing invariant: for any parent class, every user
        // in its population either follows the row continuation or appears
        // in the divergent (split-entry) set — nobody is stranded.
        fn fixture() -> &'static (UserDb, Keyring) {
            static FX: OnceLock<(UserDb, Keyring)> = OnceLock::new();
            FX.get_or_init(|| {
                let mut db = UserDb::new();
                db.add_group(Gid(1), "g1").unwrap();
                db.add_group(Gid(2), "g2").unwrap();
                db.add_group(Gid(3), "g3").unwrap();
                for i in 0..6u32 {
                    db.add_user(Uid(i), &format!("u{i}"), Gid(1 + i % 3)).unwrap();
                }
                let mut rng = sharoes_crypto::HmacDrbg::from_seed_u64(0xC0);
                let ring = Keyring::generate(&db, 512, &mut rng).unwrap();
                (db, ring)
            })
        }
        let (db, ring) = fixture();
        let pki = ring.public_directory();
        let layout = Layout {
            scheme: Scheme::SharedCaps,
            policy: CryptoPolicy::Sharoes,
            block_size: 4096,
            db,
            pki: &pki,
        };
        let parent = ObjectAttrs::new(
            10,
            NodeKind::Dir,
            Uid(parent_owner),
            Gid(parent_group),
            Mode::from_octal(parent_mode & 0o777),
        );
        let child = ObjectAttrs::new(
            11,
            NodeKind::File,
            Uid(child_owner),
            Gid(child_group),
            Mode::from_octal(0o640),
        );
        let classes = [
            sharoes_core::ClassTag::Owner,
            sharoes_core::ClassTag::Group,
            sharoes_core::ClassTag::Other,
        ];
        let parent_class = classes[class_idx];
        let (cont, divergent) = layout.continuation(&parent, parent_class, &child);
        for uid in layout.population(&parent, parent_class) {
            let true_class = child.class_of(uid, db);
            if true_class == cont {
                prop_assert!(
                    !divergent.iter().any(|(u, _)| *u == uid),
                    "{uid} both continues and diverges"
                );
            } else {
                prop_assert!(
                    divergent.contains(&(uid, true_class)),
                    "{uid} (class {true_class:?}) stranded: continuation {cont:?}, divergent {divergent:?}"
                );
            }
        }
    }

    fn hostile_bytes_never_panic(bytes in gen::vecs(gen::u8s(), 0..512)) {
        let _ = MetadataBody::from_wire(&bytes);
        let _ = DirTable::from_wire(&bytes);
        let _ = SealedObject::from_wire(&bytes);
        let _ = SplitEntry::from_wire(&bytes);
        let _ = Superblock::from_wire(&bytes);
    }

    fn superblock_roundtrips(
        root_inode in gen::u64s(),
        root_view in gen::byte_arrays::<16>(),
        mek in gen::option_of(gen::byte_arrays::<16>()),
        block_size in gen::in_range(1u32..1_000_000),
        scheme_tag in gen::in_range(0u8..2),
    ) {
        let sb = Superblock {
            root_inode,
            root_view,
            root_mek: mek.map(SymKey),
            root_mvk: None,
            block_size,
            scheme_tag,
        };
        let decoded = Superblock::from_wire(&sb.to_wire()).unwrap();
        prop_assert_eq!(decoded.root_inode, sb.root_inode);
        prop_assert_eq!(decoded.root_view, sb.root_view);
        prop_assert_eq!(decoded.root_mek, sb.root_mek);
        prop_assert_eq!(decoded.block_size, sb.block_size);
        prop_assert_eq!(decoded.scheme_tag, sb.scheme_tag);
    }
}
