//! Property tests for the wire codec and protocol: round-trip fidelity and
//! hostile-input safety (the SSP is untrusted; the client parses whatever
//! comes back).

use sharoes_net::traceframe::{attach, split_header, TraceEventWire, TRACE_HEADER_LEN};
use sharoes_net::{Cursor, KeySpace, NetError, ObjectKey, Request, Response, WireRead, WireWrite};
use sharoes_obs::TraceContext;
use sharoes_testkit::prelude::*;

fn keyspaces() -> Gen<KeySpace> {
    gen::one_of(vec![
        Gen::constant(KeySpace::Metadata),
        Gen::constant(KeySpace::Data),
        Gen::constant(KeySpace::Superblock),
        Gen::constant(KeySpace::GroupKey),
    ])
}

fn keys() -> Gen<ObjectKey> {
    let space = keyspaces();
    Gen::from_fn(move |t| {
        Ok(ObjectKey {
            space: space.sample(t)?,
            inode: t.u64(),
            view: gen::byte_arrays::<16>().sample(t)?,
            block: t.u32(),
        })
    })
}

fn requests() -> Gen<Request> {
    let key = keys();
    let small_blob = gen::vecs(gen::u8s(), 0..64);
    gen::one_of(vec![
        Gen::constant(Request::Ping),
        Gen::constant(Request::Stats),
        Gen::constant(Request::Metrics),
        {
            let key = key.clone();
            let value = gen::vecs(gen::u8s(), 0..256);
            Gen::from_fn(move |t| Ok(Request::Put { key: key.sample(t)?, value: value.sample(t)? }))
        },
        key.clone().map(|key| Request::Get { key }),
        key.clone().map(|key| Request::Delete { key }),
        gen::vecs(key.clone(), 0..8).map(|keys| Request::GetMany { keys }),
        gen::vecs(key.clone(), 0..8).map(|keys| Request::DeleteMany { keys }),
        {
            let key = key.clone();
            let blob = small_blob.clone();
            let item = Gen::from_fn(move |t| Ok((key.sample(t)?, blob.sample(t)?)));
            gen::vecs(item, 0..6).map(|items| Request::PutMany { items })
        },
        Gen::from_fn(|t| {
            Ok(Request::DeleteBlocks { inode: t.u64(), view: gen::byte_arrays::<16>().sample(t)? })
        }),
        {
            let after = gen::option_of(key.clone());
            Gen::from_fn(move |t| Ok(Request::Scan { after: after.sample(t)?, limit: t.u32() }))
        },
        Gen::from_fn(|t| Ok(Request::Trace { max: t.u32() })),
        Gen::constant(Request::Root),
        Gen::from_fn(|t| Ok(Request::IndexNode { hash: gen::byte_arrays::<32>().sample(t)? })),
        {
            let after = gen::option_of(key);
            Gen::from_fn(move |t| {
                Ok(Request::ScanVerified { after: after.sample(t)?, limit: t.u32() })
            })
        },
    ])
}

fn trace_events() -> Gen<TraceEventWire> {
    let name = gen::ascii_strings(0..24);
    let fields = gen::ascii_strings(0..48);
    let node = gen::ascii_strings(0..12);
    Gen::from_fn(move |t| {
        Ok(TraceEventWire {
            seq: t.u64(),
            time_ns: t.u64(),
            depth: (t.u32() % 64) as u16,
            level: sharoes_obs::Level::from_u8((t.u32() % 5) as u8).unwrap(),
            kind: sharoes_obs::EventKind::from_u8((t.u32() % 3) as u8).unwrap(),
            trace_id: ((t.u64() as u128) << 64) | t.u64() as u128,
            span_id: t.u64(),
            parent_id: t.u64(),
            name: name.sample(t)?,
            fields: fields.sample(t)?,
            node: node.sample(t)?,
        })
    })
}

fn contexts() -> Gen<TraceContext> {
    Gen::from_fn(|t| {
        Ok(TraceContext {
            trace_id: ((t.u64() as u128) << 64) | t.u64() as u128,
            span_id: t.u64(),
            parent_id: t.u64(),
        })
    })
}

fn responses() -> Gen<Response> {
    gen::one_of(vec![
        Gen::constant(Response::Pong),
        Gen::constant(Response::Ok),
        gen::option_of(gen::vecs(gen::u8s(), 0..256)).map(Response::Object),
        gen::vecs(gen::option_of(gen::vecs(gen::u8s(), 0..64)), 0..6).map(Response::Objects),
        Gen::from_fn(|t| Ok(Response::Stats { objects: t.u64(), bytes: t.u64() })),
        gen::ascii_strings(0..129).map(|text| Response::Metrics { text }),
        gen::ascii_strings(0..65).map(Response::Error),
        {
            let keys = gen::vecs(keys(), 0..8);
            Gen::from_fn(move |t| Ok(Response::Keys { keys: keys.sample(t)?, done: t.bool() }))
        },
        {
            let events = gen::vecs(trace_events(), 0..5);
            Gen::from_fn(move |t| {
                Ok(Response::Trace { events: events.sample(t)?, dropped: t.u64() })
            })
        },
        Gen::from_fn(|t| {
            Ok(Response::Root { root: gen::byte_arrays::<32>().sample(t)?, count: t.u64() })
        }),
        gen::option_of(gen::vecs(gen::u8s(), 0..128)).map(|node| Response::IndexNode { node }),
        {
            let keys = gen::vecs(keys(), 0..8);
            let proof = gen::vecs(gen::u8s(), 0..128);
            Gen::from_fn(move |t| {
                Ok(Response::KeysProof {
                    keys: keys.sample(t)?,
                    done: t.bool(),
                    root: gen::byte_arrays::<32>().sample(t)?,
                    proof: proof.sample(t)?,
                })
            })
        },
    ])
}

prop! {
    #![cases(256)]

    fn requests_roundtrip(req in requests()) {
        let bytes = req.to_wire();
        prop_assert_eq!(Request::from_wire(&bytes).unwrap(), req);
    }

    fn responses_roundtrip(resp in responses()) {
        let bytes = resp.to_wire();
        prop_assert_eq!(Response::from_wire(&bytes).unwrap(), resp);
    }

    fn keys_roundtrip_and_order_is_total(a in keys(), b in keys()) {
        prop_assert_eq!(ObjectKey::from_wire(&a.to_wire()).unwrap(), a);
        // Hash/Eq consistency.
        if a == b {
            prop_assert_eq!(a.to_wire(), b.to_wire());
        }
    }

    fn arbitrary_bytes_never_panic_request(bytes in gen::vecs(gen::u8s(), 0..512)) {
        // Decoding hostile bytes must return Err, never panic or hang.
        let _ = Request::from_wire(&bytes);
        let _ = Response::from_wire(&bytes);
        let _ = ObjectKey::from_wire(&bytes);
        let mut cur = Cursor::new(&bytes);
        let _ = Vec::<Option<Vec<u8>>>::read(&mut cur);
    }

    fn truncations_of_valid_messages_fail_cleanly(req in requests(), cut in gen::indices()) {
        let bytes = req.to_wire();
        let cut = cut.index(bytes.len());
        if cut < bytes.len() {
            // A strict prefix must not decode to the same message (and must
            // not panic). It may decode to a *different* valid message only
            // if the codec is non-self-delimiting — ours is length-prefixed,
            // so it must simply fail.
            prop_assert!(Request::from_wire(&bytes[..cut]).is_err());
        }
    }

    fn valid_message_with_trailing_garbage_fails(
        req in requests(),
        junk in gen::in_range_incl(1u8..=255),
    ) {
        let mut bytes = req.to_wire();
        bytes.push(junk);
        prop_assert!(Request::from_wire(&bytes).is_err());
    }

    // --- Trace-context header codec (wire propagation of trace ids) ---

    fn trace_header_roundtrips_over_any_request(ctx in contexts(), req in requests()) {
        let framed = attach(&ctx, req.to_wire());
        let (got, body) = split_header(&framed).unwrap();
        prop_assert_eq!(got, Some(ctx));
        prop_assert_eq!(Request::from_wire(body).unwrap(), req);
    }

    fn frames_without_header_still_parse(req in requests()) {
        // Backward compatibility: a legacy peer that never learned about
        // trace headers keeps working — its frames pass through untouched.
        let bytes = req.to_wire();
        let (ctx, body) = split_header(&bytes).unwrap();
        prop_assert_eq!(ctx, None);
        prop_assert_eq!(body, &bytes[..]);
    }

    fn truncated_trace_headers_fail_typed(ctx in contexts(), cut in gen::indices()) {
        let framed = attach(&ctx, vec![0u8]); // Ping body
        let cut = 2 + cut.index(TRACE_HEADER_LEN - 2); // keep the magic, cut inside
        prop_assert!(matches!(
            split_header(&framed[..cut]),
            Err(NetError::Codec("trace header truncated"))
        ));
    }

    fn bitflipped_trace_headers_fail_typed(
        ctx in contexts(),
        byte in gen::indices(),
        bit in gen::in_range_incl(0u8..=7),
    ) {
        let framed = attach(&ctx, vec![0u8]);
        // Flip one bit somewhere in the header *past the magic pair* (a
        // damaged magic makes the frame read as untraced by design — the
        // magic is a discriminator, not a covered field).
        let pos = 2 + byte.index(TRACE_HEADER_LEN - 2);
        let mut damaged = framed.clone();
        damaged[pos] ^= 1 << bit;
        match split_header(&damaged) {
            Err(NetError::Codec(
                "trace header checksum mismatch" | "unsupported trace header version",
            )) => {}
            other => prop_assert!(false, "bit flip at {pos} not rejected: {other:?}"),
        }
    }
}
