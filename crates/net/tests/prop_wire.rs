//! Property tests for the wire codec and protocol: round-trip fidelity and
//! hostile-input safety (the SSP is untrusted; the client parses whatever
//! comes back).

use proptest::prelude::*;
use sharoes_net::{Cursor, KeySpace, ObjectKey, Request, Response, WireRead, WireWrite};

fn arb_keyspace() -> impl Strategy<Value = KeySpace> {
    prop_oneof![
        Just(KeySpace::Metadata),
        Just(KeySpace::Data),
        Just(KeySpace::Superblock),
        Just(KeySpace::GroupKey),
    ]
}

fn arb_key() -> impl Strategy<Value = ObjectKey> {
    (arb_keyspace(), any::<u64>(), any::<[u8; 16]>(), any::<u32>()).prop_map(
        |(space, inode, view, block)| ObjectKey { space, inode, view, block },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        (arb_key(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(key, value)| Request::Put { key, value }),
        arb_key().prop_map(|key| Request::Get { key }),
        arb_key().prop_map(|key| Request::Delete { key }),
        prop::collection::vec(arb_key(), 0..8).prop_map(|keys| Request::GetMany { keys }),
        prop::collection::vec(arb_key(), 0..8).prop_map(|keys| Request::DeleteMany { keys }),
        prop::collection::vec((arb_key(), prop::collection::vec(any::<u8>(), 0..64)), 0..6)
            .prop_map(|items| Request::PutMany { items }),
        (any::<u64>(), any::<[u8; 16]>())
            .prop_map(|(inode, view)| Request::DeleteBlocks { inode, view }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Ok),
        prop::option::of(prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(Response::Object),
        prop::collection::vec(prop::option::of(prop::collection::vec(any::<u8>(), 0..64)), 0..6)
            .prop_map(Response::Objects),
        (any::<u64>(), any::<u64>()).prop_map(|(objects, bytes)| Response::Stats { objects, bytes }),
        "[ -~]{0,64}".prop_map(Response::Error),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let bytes = req.to_wire();
        prop_assert_eq!(Request::from_wire(&bytes).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let bytes = resp.to_wire();
        prop_assert_eq!(Response::from_wire(&bytes).unwrap(), resp);
    }

    #[test]
    fn keys_roundtrip_and_order_is_total(a in arb_key(), b in arb_key()) {
        prop_assert_eq!(ObjectKey::from_wire(&a.to_wire()).unwrap(), a);
        // Hash/Eq consistency.
        if a == b {
            prop_assert_eq!(a.to_wire(), b.to_wire());
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_request(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Decoding hostile bytes must return Err, never panic or hang.
        let _ = Request::from_wire(&bytes);
        let _ = Response::from_wire(&bytes);
        let _ = ObjectKey::from_wire(&bytes);
        let mut cur = Cursor::new(&bytes);
        let _ = Vec::<Option<Vec<u8>>>::read(&mut cur);
    }

    #[test]
    fn truncations_of_valid_messages_fail_cleanly(req in arb_request(), cut in any::<prop::sample::Index>()) {
        let bytes = req.to_wire();
        let cut = cut.index(bytes.len());
        if cut < bytes.len() {
            // A strict prefix must not decode to the same message (and must
            // not panic). It may decode to a *different* valid message only
            // if the codec is non-self-delimiting — ours is length-prefixed,
            // so it must simply fail.
            prop_assert!(Request::from_wire(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn valid_message_with_trailing_garbage_fails(req in arb_request(), junk in 1u8..=255) {
        let mut bytes = req.to_wire();
        bytes.push(junk);
        prop_assert!(Request::from_wire(&bytes).is_err());
    }
}
