//! Property tests for the pipelining layer: the correlation header codec
//! and the dispatcher's "never cross-match payloads" invariant under fault
//! injection — out-of-order completion, dropped frames, concurrent
//! waiters. The dispatcher is socket-free on purpose (see
//! `net/src/pipeline.rs`), so these properties pin the protocol logic
//! without any socket timing in the loop.

use sharoes_net::{attach_corr, split_corr, CorrDispatcher, ErrorClass, NetError, CORR_HEADER_LEN};
use sharoes_testkit::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The payload a completion for slot `i` carries: a unique function of the
/// slot, so any cross-delivery shows up as a byte mismatch.
fn payload(i: usize) -> Vec<u8> {
    let mut v = (i as u64).to_be_bytes().to_vec();
    v.extend_from_slice(&[0xA5; 3]);
    v.push(i as u8);
    v
}

/// One generated fault plan: per-slot completion ranks (sorting them gives
/// the reordered delivery schedule) and which slots get dropped on the
/// floor (their frames never arrive).
#[derive(Clone, Debug)]
struct Plan {
    ranks: Vec<u64>,
    dropped: Vec<bool>,
}

fn plans() -> Gen<Plan> {
    Gen::from_fn(|t| {
        let n = 1 + (t.u64() % 24) as usize;
        let mut ranks = Vec::with_capacity(n);
        let mut dropped = Vec::with_capacity(n);
        for _ in 0..n {
            ranks.push(t.u64());
            dropped.push(t.u64() % 4 == 0);
        }
        Ok(Plan { ranks, dropped })
    })
}

/// Completion order: slot indices sorted by their rank (stable, so equal
/// ranks keep index order — still an arbitrary reorder vs registration).
fn schedule(plan: &Plan) -> Vec<usize> {
    let mut order: Vec<usize> = (0..plan.ranks.len()).collect();
    order.sort_by_key(|&i| plan.ranks[i]);
    order
}

sharoes_testkit::prop! {
    #![cases(64)]

    fn corr_header_roundtrips(id in Gen::from_fn(|t| Ok(t.u64())),
                              body in gen::vecs(gen::u8s(), 0..64)) {
        let framed = attach_corr(id, body.clone());
        prop_assert_eq!(framed.len(), CORR_HEADER_LEN + body.len());
        let (got, rest) = split_corr(&framed).unwrap();
        prop_assert_eq!(got, Some(id));
        prop_assert_eq!(rest, &body[..]);
    }

    fn arbitrary_frames_split_without_panicking(bytes in gen::vecs(gen::u8s(), 0..32)) {
        // Either a clean pass-through, a parsed header, or a typed error —
        // never a panic, never a silent misparse.
        match split_corr(&bytes) {
            Ok((None, rest)) => prop_assert_eq!(rest, &bytes[..]),
            Ok((Some(_), rest)) => {
                prop_assert!(bytes.len() >= CORR_HEADER_LEN);
                prop_assert_eq!(rest, &bytes[CORR_HEADER_LEN..]);
            }
            Err(e) => {
                // Only a truncated magic-bearing frame errors, and it is a
                // typed fatal codec error (a desync, not a retry).
                prop_assert!(bytes.len() < CORR_HEADER_LEN);
                prop_assert!(matches!(e, NetError::Codec(_)), "unexpected error {e}");
            }
        }
    }

    fn reordered_and_dropped_completions_never_cross_match(plan in plans()) {
        let d = CorrDispatcher::new();
        let ids: Vec<u64> =
            (0..plan.ranks.len()).map(|_| d.register().unwrap()).collect();

        // Deliver completions out of registration order; dropped slots
        // never see their frame.
        let mut delivered = 0usize;
        for i in schedule(&plan) {
            if !plan.dropped[i] {
                d.complete(ids[i], Ok(payload(i)));
                delivered += 1;
            }
        }
        // The connection tears once the missing frames are noticed (the
        // real reader loop does this on any read/codec error).
        if delivered < ids.len() {
            d.fail_all("frames dropped");
        }

        // Collect in yet another order (reverse of delivery): every
        // delivered slot gets exactly its own payload, every dropped slot
        // a typed retryable error — never someone else's bytes.
        for i in schedule(&plan).into_iter().rev() {
            let got = d.wait(ids[i], Duration::from_millis(200));
            if plan.dropped[i] {
                let err = got.expect_err("dropped frame must surface an error");
                prop_assert_eq!(err.class(), ErrorClass::Retryable);
            } else {
                prop_assert_eq!(got.unwrap(), payload(i));
            }
        }
    }

    fn concurrent_waiters_each_get_their_own_payload(plan in plans()) {
        let d = Arc::new(CorrDispatcher::new());
        let ids: Vec<u64> =
            (0..plan.ranks.len()).map(|_| d.register().unwrap()).collect();

        // Waiters park first, from many threads; then a "server" thread
        // completes in the shuffled schedule with drops. The parked-waiter
        // path exercises the condvar wakeups, not just the fast path.
        let outcomes = std::thread::scope(|scope| {
            let waiters: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let d = Arc::clone(&d);
                    scope.spawn(move || d.wait(id, Duration::from_secs(10)))
                })
                .collect();
            let server = {
                let d = Arc::clone(&d);
                let plan = &plan;
                let ids = &ids;
                scope.spawn(move || {
                    let mut all = true;
                    for i in schedule(plan) {
                        if plan.dropped[i] {
                            all = false;
                        } else {
                            d.complete(ids[i], Ok(payload(i)));
                        }
                    }
                    if !all {
                        d.fail_all("frames dropped");
                    }
                })
            };
            server.join().expect("server thread");
            waiters.into_iter().map(|w| w.join().expect("waiter thread")).collect::<Vec<_>>()
        });

        for (i, got) in outcomes.into_iter().enumerate() {
            if plan.dropped[i] {
                let err = got.expect_err("dropped frame must surface an error");
                prop_assert_eq!(err.class(), ErrorClass::Retryable);
            } else {
                prop_assert_eq!(got.unwrap(), payload(i), "slot {i} got crossed bytes");
            }
        }
    }

    fn late_completions_are_orphaned_not_redelivered(plan in plans()) {
        // Time out every waiter, then deliver late: nothing may be
        // deliverable afterwards (each late frame is an orphan), and fresh
        // slots must never observe a stale payload.
        let d = CorrDispatcher::new();
        let ids: Vec<u64> =
            (0..plan.ranks.len()).map(|_| d.register().unwrap()).collect();
        for &id in &ids {
            let err = d.wait(id, Duration::from_millis(0)).unwrap_err();
            prop_assert_eq!(err.class(), ErrorClass::Retryable);
        }
        for i in schedule(&plan) {
            d.complete(ids[i], Ok(payload(i)));
        }
        let fresh = d.register().unwrap();
        prop_assert!(!ids.contains(&fresh), "fresh id must never reuse a live one");
        let err = d.wait(fresh, Duration::from_millis(0)).unwrap_err();
        prop_assert_eq!(err.class(), ErrorClass::Retryable);
    }
}
