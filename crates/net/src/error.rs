//! Network-layer error type.

use std::fmt;

/// Errors from the wire codec and transports.
#[derive(Debug)]
pub enum NetError {
    /// Malformed bytes on the wire.
    Codec(&'static str),
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The server replied with an error message.
    Remote(String),
    /// A frame exceeded the configured maximum size.
    FrameTooLarge(usize),
    /// The transport has been shut down.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(why) => write!(f, "codec error: {why}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::FrameTooLarge(n) => write!(f, "frame too large: {n} bytes"),
            NetError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(NetError::Codec("bad tag").to_string(), "codec error: bad tag");
        assert_eq!(NetError::Closed.to_string(), "transport closed");
        assert_eq!(NetError::FrameTooLarge(99).to_string(), "frame too large: 99 bytes");
    }
}
