//! Network-layer error type and the retryability taxonomy.

use std::fmt;

/// Whether a failed SSP call may safely be retried.
///
/// Every SSP operation is an idempotent put/get/delete of client-sealed
/// blobs — the server keeps no per-connection state, and re-applying a
/// mutation whose response was lost yields the same stored bytes. Failures
/// therefore split cleanly:
///
/// * [`ErrorClass::Retryable`] — connectivity loss, timeouts, garbled or
///   desynchronized frames, and transient server-side errors. Retrying
///   (over a fresh connection if needed) is safe and expected to succeed
///   once the fault clears.
/// * [`ErrorClass::Fatal`] — protocol violations (oversized frames) and
///   persistent server-side rejections. Retrying cannot help. Crucially,
///   integrity failures detected *above* this layer (signature or tamper
///   errors, `CoreError::TamperDetected`) never reach this taxonomy as
///   retryable: the resilient transport only ever replays the same
///   request bytes, and the client treats verification failures as
///   terminal, so tampered state is never "retried into oblivion".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorClass {
    /// Safe to retry (all SSP ops are idempotent).
    Retryable,
    /// Retrying cannot help; surface to the caller.
    Fatal,
}

/// Prefix marking a server error message as transient (safe to retry).
///
/// The SSP uses it for load-shedding style rejections; the fault injector
/// uses it for injected soft failures.
pub const TRANSIENT_ERROR_PREFIX: &str = "transient";

/// Errors from the wire codec and transports.
#[derive(Debug)]
pub enum NetError {
    /// Malformed bytes on the wire.
    Codec(&'static str),
    /// Underlying socket failure.
    Io(std::io::Error),
    /// The server replied with an error message.
    Remote(String),
    /// A frame exceeded the configured maximum size.
    FrameTooLarge(usize),
    /// The transport has been shut down.
    Closed,
    /// Stored bytes failed integrity verification (torn WAL record, sealed
    /// segment bit rot, checkpoint checksum mismatch). Unlike [`Self::Codec`]
    /// — line noise that a reconnect re-synchronizes — corruption is in the
    /// durable state itself: retrying rereads the same rotten bytes.
    Corrupt(String),
}

impl NetError {
    /// Classifies this error as [`ErrorClass::Retryable`] or
    /// [`ErrorClass::Fatal`] (see the [`ErrorClass`] docs for the safety
    /// argument).
    pub fn class(&self) -> ErrorClass {
        match self {
            // Socket failures, torn connections, and timeouts: the request
            // or its response was lost in transit. Idempotency makes a
            // resend safe.
            NetError::Io(_) | NetError::Closed => ErrorClass::Retryable,
            // A garbled or desynchronized frame: the server only ever emits
            // well-formed responses, so codec failures at the transport
            // boundary mean line corruption or a stale in-flight reply.
            // Reconnecting re-synchronizes the stream.
            NetError::Codec(_) => ErrorClass::Retryable,
            // A frame-size violation is a protocol bug (or an attack); the
            // same request would be rejected forever.
            NetError::FrameTooLarge(_) => ErrorClass::Fatal,
            // On-disk corruption persists across retries; surfacing it is
            // the point (cluster reads fail over to another replica at a
            // higher layer, not by blind resend to the rotten node).
            NetError::Corrupt(_) => ErrorClass::Fatal,
            // Server-side errors are fatal unless the server explicitly
            // marked them transient.
            NetError::Remote(msg) => {
                if msg.starts_with(TRANSIENT_ERROR_PREFIX) {
                    ErrorClass::Retryable
                } else {
                    ErrorClass::Fatal
                }
            }
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(why) => write!(f, "codec error: {why}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::FrameTooLarge(n) => write!(f, "frame too large: {n} bytes"),
            NetError::Closed => write!(f, "transport closed"),
            NetError::Corrupt(why) => write!(f, "storage corruption: {why}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(NetError::Codec("bad tag").to_string(), "codec error: bad tag");
        assert_eq!(NetError::Closed.to_string(), "transport closed");
        assert_eq!(NetError::FrameTooLarge(99).to_string(), "frame too large: 99 bytes");
    }

    /// Table-driven check of the Retryable/Fatal split. Tamper-adjacent
    /// failures (signature mismatches surface as non-transient remote or
    /// higher-layer errors) must never classify as retryable.
    #[test]
    fn classification_table() {
        use std::io;
        let table: Vec<(NetError, ErrorClass)> = vec![
            (NetError::Io(io::Error::from(io::ErrorKind::TimedOut)), ErrorClass::Retryable),
            (NetError::Io(io::Error::from(io::ErrorKind::ConnectionReset)), ErrorClass::Retryable),
            (
                NetError::Io(io::Error::from(io::ErrorKind::ConnectionRefused)),
                ErrorClass::Retryable,
            ),
            (NetError::Io(io::Error::from(io::ErrorKind::UnexpectedEof)), ErrorClass::Retryable),
            (NetError::Closed, ErrorClass::Retryable),
            (NetError::Codec("truncated input"), ErrorClass::Retryable),
            (NetError::Codec("response does not match request"), ErrorClass::Retryable),
            (NetError::FrameTooLarge(usize::MAX), ErrorClass::Fatal),
            // Durable-state corruption must never be blindly retried.
            (NetError::Corrupt("torn record tail at byte 7".into()), ErrorClass::Fatal),
            (NetError::Corrupt("record checksum mismatch".into()), ErrorClass::Fatal),
            (NetError::Remote("transient: injected fault".into()), ErrorClass::Retryable),
            (NetError::Remote("transient overload, back off".into()), ErrorClass::Retryable),
            (NetError::Remote("frame too large".into()), ErrorClass::Fatal),
            (NetError::Remote("bad request: unknown request tag".into()), ErrorClass::Fatal),
            // Tamper/signature-shaped server messages MUST be fatal.
            (NetError::Remote("signature verification failed".into()), ErrorClass::Fatal),
            (NetError::Remote("tamper detected: rollback".into()), ErrorClass::Fatal),
        ];
        for (err, want) in table {
            assert_eq!(err.class(), want, "misclassified: {err}");
        }
    }
}
