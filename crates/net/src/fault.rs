//! Deterministic fault injection for transports.
//!
//! [`FaultInjector`] wraps any [`Transport`] and, driven by a seeded
//! HMAC-DRBG schedule, makes it misbehave the way a WAN link to an
//! outsourced SSP does (paper §VII: outages and partial failures are why
//! the SSP relationship is governed by SLAs): dropped requests, lost
//! responses, torn connections, corrupted and truncated frames, stale
//! replies from a desynchronized stream, and transient server errors.
//!
//! The schedule is a pure function of its seed and the call sequence, so a
//! chaos run is fully replayable: rerun with the same `SHAROES_TEST_SEED`
//! and the same faults hit the same calls. The schedule state is shared
//! (`Arc`) across reconnections, so a resilient caller that replaces a
//! broken connection keeps consuming the same fault stream.
//!
//! Two deliberate design points keep injected faults *detectable at the
//! transport layer* (and therefore survivable by retry):
//!
//! * Frame corruption smashes the response tag byte rather than flipping a
//!   random payload bit. TCP checksums make random line corruption
//!   frame-detectable in practice; corruption that survives transport
//!   checksums is indistinguishable from tampering, which the client's
//!   crypto layer correctly treats as fatal — injecting it would make
//!   "eventually completes" unachievable by design, not by bug.
//! * Stale replies are only injected when the remembered previous response
//!   has a different shape than the current request expects (see
//!   [`Request::matches_response`]). Same-shape staleness is the rollback
//!   problem the client's signed-version freshness ledger owns.

use crate::cost::CostMeter;
use crate::error::{NetError, TRANSIENT_ERROR_PREFIX};
use crate::message::{Request, Response};
use crate::transport::Transport;
use crate::wire::{WireRead, WireWrite};
use sharoes_crypto::{HmacDrbg, RandomSource};
use std::sync::{Arc, Mutex, OnceLock};

/// Cached global-registry counters, one per [`FaultKind`] (in
/// `FaultKind::ALL` order). The total lives in `net_faults_injected_total`
/// via [`CostMeter::charge_fault`].
fn fault_counters() -> &'static [sharoes_obs::Counter; 7] {
    static COUNTERS: OnceLock<[sharoes_obs::Counter; 7]> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        [
            sharoes_obs::counter("net_fault_requests_lost_total"),
            sharoes_obs::counter("net_fault_responses_lost_total"),
            sharoes_obs::counter("net_fault_disconnects_total"),
            sharoes_obs::counter("net_fault_corrupt_frames_total"),
            sharoes_obs::counter("net_fault_truncated_frames_total"),
            sharoes_obs::counter("net_fault_stale_responses_total"),
            sharoes_obs::counter("net_fault_transient_errors_total"),
        ]
    })
}

/// Operation classes for per-op fault probabilities.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// `Request::Ping`.
    Ping,
    /// `Request::Get` / `Request::GetMany`.
    Get,
    /// `Request::Put` / `Request::PutMany`.
    Put,
    /// `Request::Delete` / `Request::DeleteBlocks` / `Request::DeleteMany`.
    Delete,
    /// `Request::Stats` / `Request::Metrics` / `Request::Trace`
    /// (operational introspection).
    Stats,
}

impl OpClass {
    /// The class of a request.
    pub fn of(request: &Request) -> Self {
        match request {
            Request::Ping => OpClass::Ping,
            // Scans (verified or not) and index lookups are read-only index
            // walks; class them with the reads.
            Request::Get { .. }
            | Request::GetMany { .. }
            | Request::Scan { .. }
            | Request::ScanVerified { .. }
            | Request::Root
            | Request::IndexNode { .. } => OpClass::Get,
            Request::Put { .. } | Request::PutMany { .. } => OpClass::Put,
            Request::Delete { .. } | Request::DeleteBlocks { .. } | Request::DeleteMany { .. } => {
                OpClass::Delete
            }
            Request::Stats | Request::Metrics | Request::Trace { .. } => OpClass::Stats,
        }
    }
}

/// The kinds of fault the injector can introduce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The request never reaches the server; the call times out.
    RequestLost,
    /// The server performs the operation but the response is lost.
    ResponseLost,
    /// The connection tears down; subsequent calls on it fail until the
    /// caller reconnects.
    Disconnect,
    /// The response frame arrives corrupted (unparseable).
    CorruptFrame,
    /// The response frame arrives truncated (unparseable).
    TruncatedFrame,
    /// A stale reply from a desynchronized stream: the previous response is
    /// replayed instead of performing the call.
    StaleResponse,
    /// The server sheds load with a transient error.
    TransientError,
}

impl FaultKind {
    const ALL: [FaultKind; 7] = [
        FaultKind::RequestLost,
        FaultKind::ResponseLost,
        FaultKind::Disconnect,
        FaultKind::CorruptFrame,
        FaultKind::TruncatedFrame,
        FaultKind::StaleResponse,
        FaultKind::TransientError,
    ];
}

/// Per-kind injection tallies (for reporting and replay assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Requests dropped before delivery.
    pub requests_lost: u64,
    /// Responses dropped after delivery.
    pub responses_lost: u64,
    /// Connections torn down.
    pub disconnects: u64,
    /// Corrupted response frames.
    pub corrupt_frames: u64,
    /// Truncated response frames.
    pub truncated_frames: u64,
    /// Stale responses replayed.
    pub stale_responses: u64,
    /// Transient server errors injected.
    pub transient_errors: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.requests_lost
            + self.responses_lost
            + self.disconnects
            + self.corrupt_frames
            + self.truncated_frames
            + self.stale_responses
            + self.transient_errors
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::RequestLost => self.requests_lost += 1,
            FaultKind::ResponseLost => self.responses_lost += 1,
            FaultKind::Disconnect => self.disconnects += 1,
            FaultKind::CorruptFrame => self.corrupt_frames += 1,
            FaultKind::TruncatedFrame => self.truncated_frames += 1,
            FaultKind::StaleResponse => self.stale_responses += 1,
            FaultKind::TransientError => self.transient_errors += 1,
        }
    }
}

/// Fault probabilities.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Base probability (0.0..=1.0) that any given call is faulted.
    pub rate: f64,
    /// Per-op overrides of the base rate (absolute probabilities).
    pub op_rates: Vec<(OpClass, f64)>,
    /// Relative weights of each [`FaultKind`], indexed in `FaultKind::ALL`
    /// order. A zero weight disables that kind.
    pub weights: [u32; 7],
}

impl FaultConfig {
    /// Every fault kind equally likely, at `rate`.
    pub fn at_rate(rate: f64) -> Self {
        FaultConfig { rate, op_rates: Vec::new(), weights: [1; 7] }
    }

    /// The effective fault probability for `request`.
    fn rate_for(&self, request: &Request) -> f64 {
        let class = OpClass::of(request);
        self.op_rates
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, r)| *r)
            .unwrap_or(self.rate)
            .clamp(0.0, 1.0)
    }
}

/// The shared, replayable fault schedule.
///
/// Shared via `Arc<Mutex<..>>` so reconnections (which build a fresh
/// [`FaultInjector`]) continue the same deterministic stream.
pub struct FaultSchedule {
    rng: HmacDrbg,
    /// Live fault probabilities; adjustable mid-run (e.g. to quiesce the
    /// schedule after a chaos phase).
    pub config: FaultConfig,
    counts: FaultCounts,
    /// Previous successfully delivered response, for stale replay.
    last_response: Option<Response>,
}

impl FaultSchedule {
    /// A schedule driven by `config`, seeded with `seed`.
    pub fn shared(config: FaultConfig, seed: u64) -> Arc<Mutex<FaultSchedule>> {
        Arc::new(Mutex::new(FaultSchedule {
            rng: HmacDrbg::from_seed_u64(seed),
            config,
            counts: FaultCounts::default(),
            last_response: None,
        }))
    }

    /// Injection tallies so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Decides the fault (if any) for `request`, consuming schedule
    /// entropy. Exactly one `next_u64` per call plus one per fault keeps
    /// the stream a pure function of the call sequence.
    fn decide(&mut self, request: &Request) -> Option<FaultKind> {
        let rate = self.config.rate_for(request);
        let draw = self.rng.next_u64() as f64 / u64::MAX as f64;
        if draw >= rate {
            return None;
        }
        let total: u64 = self.config.weights.iter().map(|&w| w as u64).sum();
        if total == 0 {
            return None;
        }
        let mut pick = self.rng.next_u64() % total;
        for (kind, &w) in FaultKind::ALL.iter().zip(&self.config.weights) {
            if pick < w as u64 {
                return Some(*kind);
            }
            pick -= w as u64;
        }
        None
    }
}

/// A transport decorator that injects deterministic faults.
pub struct FaultInjector<T: Transport> {
    inner: T,
    schedule: Arc<Mutex<FaultSchedule>>,
    /// Set once a `Disconnect` fault fires: this connection is dead and
    /// every further call fails until the caller reconnects (building a
    /// fresh injector around the shared schedule).
    broken: bool,
}

impl<T: Transport> FaultInjector<T> {
    /// Wraps `inner`, drawing faults from `schedule`.
    pub fn new(inner: T, schedule: Arc<Mutex<FaultSchedule>>) -> Self {
        FaultInjector { inner, schedule, broken: false }
    }

    /// Injection tallies so far (across all connections on this schedule).
    pub fn counts(&self) -> FaultCounts {
        self.schedule.lock().unwrap_or_else(|e| e.into_inner()).counts
    }

    fn io(kind: std::io::ErrorKind, what: &str) -> NetError {
        NetError::Io(std::io::Error::new(kind, format!("injected fault: {what}")))
    }

    /// Remembers a delivered response for later stale replay.
    fn remember(&self, response: &Response) {
        let mut s = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
        s.last_response = Some(response.clone());
    }
}

impl<T: Transport> Transport for FaultInjector<T> {
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        if self.broken {
            return Err(NetError::Closed);
        }
        let decision = {
            let mut s = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
            match s.decide(request) {
                // Stale replay is only injectable when it is shape-detectable
                // (see module docs); otherwise the call proceeds cleanly.
                Some(FaultKind::StaleResponse) => match &s.last_response {
                    Some(prev) if !request.matches_response(prev) => Some(FaultKind::StaleResponse),
                    _ => None,
                },
                other => other,
            }
        };
        let Some(kind) = decision else {
            let response = self.inner.call(request)?;
            self.remember(&response);
            return Ok(response);
        };
        {
            let mut s = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
            s.counts.bump(kind);
        }
        let pos = FaultKind::ALL.iter().position(|k| *k == kind).expect("kind is in ALL");
        fault_counters()[pos].inc();
        sharoes_obs::obs_event!(sharoes_obs::Level::Trace, "net.fault", kind);
        self.inner.meter().charge_fault();
        match kind {
            FaultKind::RequestLost => Err(Self::io(std::io::ErrorKind::TimedOut, "request lost")),
            FaultKind::ResponseLost => {
                // The server performs the operation; only the reply is lost.
                // Retrying is safe because every SSP op is idempotent.
                let response = self.inner.call(request)?;
                self.remember(&response);
                Err(Self::io(std::io::ErrorKind::TimedOut, "response lost"))
            }
            FaultKind::Disconnect => {
                self.broken = true;
                Err(Self::io(std::io::ErrorKind::ConnectionReset, "connection torn down"))
            }
            FaultKind::CorruptFrame => {
                let response = self.inner.call(request)?;
                self.remember(&response);
                let mut bytes = response.to_wire();
                // Smash the tag byte so the frame is detectably garbage.
                bytes[0] = 0xAA;
                Response::from_wire(&bytes)
            }
            FaultKind::TruncatedFrame => {
                let response = self.inner.call(request)?;
                self.remember(&response);
                let bytes = response.to_wire();
                let keep = {
                    let mut s = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
                    (s.rng.next_u64() as usize) % bytes.len().max(1)
                };
                // A strict prefix never parses: every variant's payload is
                // fixed-size or length-prefixed, so the cursor runs dry.
                Response::from_wire(&bytes[..keep])
            }
            FaultKind::StaleResponse => {
                // Consume the remembered reply: a desynchronized stream has
                // exactly one late frame to drain, so a reconnect-and-retry
                // observes a clean stream.
                let prev = {
                    let mut s = self.schedule.lock().unwrap_or_else(|e| e.into_inner());
                    s.last_response.take()
                };
                Ok(prev.expect("stale replay gated on a remembered response"))
            }
            FaultKind::TransientError => {
                Ok(Response::Error(format!("{TRANSIENT_ERROR_PREFIX}: injected server overload")))
            }
        }
    }

    fn meter(&self) -> &Arc<CostMeter> {
        self.inner.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectKey;
    use crate::transport::{InMemoryTransport, RequestHandler};
    use std::collections::HashMap;

    struct MapStore(Mutex<HashMap<ObjectKey, Vec<u8>>>);

    impl RequestHandler for MapStore {
        fn handle(&self, request: Request) -> Response {
            match request {
                Request::Ping => Response::Pong,
                Request::Put { key, value } => {
                    self.0.lock().unwrap().insert(key, value);
                    Response::Ok
                }
                Request::Get { key } => Response::Object(self.0.lock().unwrap().get(&key).cloned()),
                _ => Response::Error("unsupported in test".into()),
            }
        }
    }

    fn injector(rate: f64, seed: u64) -> FaultInjector<InMemoryTransport> {
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let schedule = FaultSchedule::shared(FaultConfig::at_rate(rate), seed);
        FaultInjector::new(InMemoryTransport::new(handler), schedule)
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut t = injector(0.0, 1);
        for _ in 0..50 {
            assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        }
        assert_eq!(t.counts().total(), 0);
        assert_eq!(t.meter().sample().faults_injected, 0);
    }

    #[test]
    fn full_rate_faults_every_call() {
        let mut t = injector(1.0, 2);
        let key = ObjectKey::metadata(1, [0; 16]);
        let mut faulted = 0;
        for i in 0..60u32 {
            let r = t.call(&Request::Put { key, value: vec![i as u8] });
            match r {
                Err(_) => faulted += 1,
                Ok(Response::Error(msg)) => {
                    assert!(msg.starts_with(TRANSIENT_ERROR_PREFIX));
                    faulted += 1;
                }
                Ok(Response::Pong) => faulted += 1, // stale replay of a Ping reply
                Ok(other) => panic!("unfaulted response at rate 1.0: {other:?}"),
            }
            if t.broken {
                break;
            }
        }
        assert!(faulted > 0);
        assert_eq!(t.counts().total(), faulted);
        assert_eq!(t.meter().sample().faults_injected, faulted);
    }

    #[test]
    fn schedule_is_replayable() {
        let run = |seed: u64| {
            let mut t = injector(0.3, seed);
            let key = ObjectKey::metadata(9, [1; 16]);
            let mut outcomes = Vec::new();
            for i in 0..40u32 {
                if t.broken {
                    // Simulate a reconnect: fresh injector, same schedule.
                    let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
                    t = FaultInjector::new(
                        InMemoryTransport::new(handler),
                        Arc::clone(&t.schedule),
                    );
                }
                outcomes.push(t.call(&Request::Put { key, value: vec![i as u8] }).is_ok());
            }
            (outcomes, t.counts())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds should differ");
    }

    #[test]
    fn disconnect_latches_until_reconnect() {
        // Weight only disconnects, rate 1: the first call breaks the
        // connection, later calls fail with Closed.
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let mut config = FaultConfig::at_rate(1.0);
        config.weights = [0, 0, 1, 0, 0, 0, 0];
        let schedule = FaultSchedule::shared(config, 3);
        let mut t = FaultInjector::new(InMemoryTransport::new(handler.clone()), schedule.clone());
        assert!(t.call(&Request::Ping).is_err());
        assert!(matches!(t.call(&Request::Ping), Err(NetError::Closed)));
        // A reconnect (fresh injector, same schedule) works again —
        // until the next scheduled disconnect.
        let mut t2 = FaultInjector::new(InMemoryTransport::new(handler), schedule);
        assert!(matches!(t2.call(&Request::Ping), Err(NetError::Io(_))));
    }

    #[test]
    fn response_lost_still_applies_the_mutation() {
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let mut config = FaultConfig::at_rate(1.0);
        config.weights = [0, 1, 0, 0, 0, 0, 0]; // only ResponseLost
        let schedule = FaultSchedule::shared(config, 4);
        let mut t = FaultInjector::new(InMemoryTransport::new(handler.clone()), schedule);
        let key = ObjectKey::metadata(5, [5; 16]);
        assert!(t.call(&Request::Put { key, value: vec![42] }).is_err());
        // The store took the write even though the reply was dropped.
        assert_eq!(handler.0.lock().unwrap().get(&key), Some(&vec![42]));
    }

    #[test]
    fn stale_replay_is_always_shape_detectable() {
        let mut config = FaultConfig::at_rate(1.0);
        config.weights = [0, 0, 0, 0, 0, 1, 0]; // only StaleResponse
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let schedule = FaultSchedule::shared(config, 5);
        let mut t = FaultInjector::new(InMemoryTransport::new(handler), schedule);
        let key = ObjectKey::metadata(6, [6; 16]);
        // First call: nothing remembered yet, so no stale fault fires.
        assert_eq!(t.call(&Request::Put { key, value: vec![1] }).unwrap(), Response::Ok);
        // A second Put would get a shape-compatible `Ok` replay, which the
        // injector refuses (falls through to a clean call).
        assert_eq!(t.call(&Request::Put { key, value: vec![2] }).unwrap(), Response::Ok);
        // A Get now draws the remembered `Ok` — a shape mismatch the
        // resilient layer can detect. The replay consumes the late frame.
        let stale = t.call(&Request::Get { key }).unwrap();
        assert_eq!(stale, Response::Ok);
        assert!(!Request::Get { key }.matches_response(&stale));
        // Stream drained: the next Get is clean again.
        assert_eq!(t.call(&Request::Get { key }).unwrap(), Response::Object(Some(vec![2])));
    }

    #[test]
    fn corrupt_and_truncated_frames_fail_parse() {
        for (weights, name) in
            [([0, 0, 0, 1, 0, 0, 0], "corrupt"), ([0, 0, 0, 0, 1, 0, 0], "truncated")]
        {
            let mut config = FaultConfig::at_rate(1.0);
            config.weights = weights;
            let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
            let schedule = FaultSchedule::shared(config, 6);
            let mut t = FaultInjector::new(InMemoryTransport::new(handler), schedule);
            let key = ObjectKey::metadata(7, [7; 16]);
            for i in 0..10u32 {
                let r = t.call(&Request::Put { key, value: vec![i as u8; 40] });
                assert!(matches!(r, Err(NetError::Codec(_))), "{name} frame parsed: {r:?}");
            }
        }
    }

    #[test]
    fn per_op_rates_override_base() {
        let mut config = FaultConfig::at_rate(0.0);
        config.op_rates = vec![(OpClass::Put, 1.0)];
        config.weights = [0, 0, 0, 0, 0, 0, 1]; // only transient errors
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let schedule = FaultSchedule::shared(config, 7);
        let mut t = FaultInjector::new(InMemoryTransport::new(handler), schedule);
        let key = ObjectKey::metadata(8, [8; 16]);
        // Gets are clean; Puts always shed.
        assert_eq!(t.call(&Request::Get { key }).unwrap(), Response::Object(None));
        assert!(matches!(
            t.call(&Request::Put { key, value: vec![] }).unwrap(),
            Response::Error(_)
        ));
    }
}
