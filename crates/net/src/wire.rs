//! Length-prefixed binary wire codec.
//!
//! All client↔SSP traffic and every at-rest object layout in this
//! reproduction is encoded with these helpers: explicit, versionable, and
//! with checked reads everywhere (the SSP is untrusted, so the client must
//! survive arbitrary bytes). We deliberately hand-roll this instead of using
//! `serde` — see DESIGN.md substitution #5.

use crate::error::NetError;

/// Serialize into a byte vector.
pub trait WireWrite {
    /// Appends the encoding of `self` to `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write(&mut out);
        out
    }
}

/// Deserialize from a byte cursor.
pub trait WireRead: Sized {
    /// Decodes a value, advancing the cursor.
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError>;

    /// Convenience: decodes a value that must consume the whole buffer.
    fn from_wire(bytes: &[u8]) -> Result<Self, NetError> {
        let mut cur = Cursor::new(bytes);
        let v = Self::read(&mut cur)?;
        cur.expect_end()?;
        Ok(v)
    }
}

/// A checked read cursor.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless fully consumed.
    pub fn expect_end(&self) -> Result<(), NetError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(NetError::Codec("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Codec("truncated input"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

macro_rules! impl_wire_uint {
    ($ty:ty) => {
        impl WireWrite for $ty {
            fn write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
        }
        impl WireRead for $ty {
            fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                let mut arr = [0u8; std::mem::size_of::<$ty>()];
                arr.copy_from_slice(bytes);
                Ok(<$ty>::from_be_bytes(arr))
            }
        }
    };
}

impl_wire_uint!(u8);
impl_wire_uint!(u16);
impl_wire_uint!(u32);
impl_wire_uint!(u64);
impl_wire_uint!(u128);

impl WireWrite for bool {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl WireRead for bool {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        match u8::read(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(NetError::Codec("invalid bool")),
        }
    }
}

impl WireWrite for [u8; 16] {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl WireRead for [u8; 16] {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        let bytes = r.take(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(bytes);
        Ok(arr)
    }
}

impl WireWrite for [u8; 32] {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl WireRead for [u8; 32] {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        let bytes = r.take(32)?;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(bytes);
        Ok(arr)
    }
}

impl WireWrite for String {
    fn write(&self, out: &mut Vec<u8>) {
        (self.len() as u32).write(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireRead for String {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        let len = u32::read(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::Codec("invalid utf-8"))
    }
}

impl<T: WireWrite> WireWrite for Option<T> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write(out);
            }
        }
    }
}

impl<T: WireRead> WireRead for Option<T> {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        match u8::read(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::read(r)?)),
            _ => Err(NetError::Codec("invalid option tag")),
        }
    }
}

impl<T: WireWrite> WireWrite for Vec<T> {
    fn write(&self, out: &mut Vec<u8>) {
        (self.len() as u32).write(out);
        for item in self {
            item.write(out);
        }
    }
}

impl<T: WireRead> WireRead for Vec<T> {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        let len = u32::read(r)? as usize;
        // Guard against hostile length prefixes: each element costs >= 1 byte.
        if len > r.remaining() {
            return Err(NetError::Codec("vector length exceeds input"));
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::read(r)?);
        }
        Ok(out)
    }
}

impl<A: WireWrite, B: WireWrite> WireWrite for (A, B) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }
}

impl<A: WireRead, B: WireRead> WireRead for (A, B) {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        Ok((A::read(r)?, B::read(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireWrite + WireRead + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        assert_eq!(T::from_wire(&bytes).unwrap(), v);
    }

    #[test]
    fn scalars() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(bool::from_wire(&[2]).is_err());
    }

    #[test]
    fn byte_vectors_and_strings() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip("hello".to_string());
        roundtrip(String::new());
        roundtrip([7u8; 16]);
        roundtrip([9u8; 32]);
    }

    #[test]
    fn options_and_nested() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u32));
        roundtrip(vec![Some("a".to_string()), None]);
        roundtrip((1u32, "pair".to_string()));
        roundtrip(vec![(1u64, vec![1u8, 2]), (2u64, vec![])]);
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let bytes = 12345u32.to_wire();
        assert!(u32::from_wire(&bytes[..3]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(u32::from_wire(&padded).is_err());
    }

    #[test]
    fn hostile_vector_length_rejected() {
        // Claims 2^32-1 elements with a 5-byte body.
        let mut evil = (u32::MAX).to_wire();
        evil.push(0);
        assert!(Vec::<u64>::from_wire(&evil).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        2u32.write(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::from_wire(&bytes).is_err());
    }
}
