//! A retrying, reconnecting transport decorator.
//!
//! [`ResilientTransport`] wraps a [`Connector`] (a factory producing fresh
//! connections) and gives the client a single durable channel to the SSP:
//!
//! * **Bounded retries with exponential backoff.** A call that fails with a
//!   [`ErrorClass::Retryable`] error is retried up to
//!   [`RetryPolicy::max_attempts`] times, sleeping `base_backoff * 2^n`
//!   (capped at [`RetryPolicy::max_backoff`]) plus deterministic jitter
//!   between attempts. [`ErrorClass::Fatal`] errors surface immediately.
//! * **Automatic reconnect.** Connection-level failures (I/O errors, torn
//!   or garbled frames) drop the current connection; the next attempt asks
//!   the connector for a new one. Transient server errors retry on the same
//!   connection — the stream is still synchronized.
//! * **Desync detection.** A reply whose shape does not match the request
//!   (see [`Request::matches_response`]) means the stream slipped by a
//!   frame (a late reply after a timeout). The connection is dropped and
//!   the call retried on a fresh one.
//!
//! Retrying is safe because every SSP operation is an idempotent put / get /
//! delete of client-sealed blobs (see [`crate::error::ErrorClass`] for the
//! full argument); the decorator only ever resends the same request.
//!
//! Jitter is drawn from a seeded HMAC-DRBG, so backoff sequences — like
//! everything else in the test/bench harness — are a pure function of the
//! seed.

use crate::cost::CostMeter;
use crate::error::{ErrorClass, NetError};
use crate::message::{Request, Response};
use crate::transport::Transport;
use sharoes_crypto::{HmacDrbg, RandomSource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// How a [`ResilientTransport`] waits out a backoff delay.
///
/// The default [`WallClockSleeper`] actually sleeps. Tests and chaos
/// suites inject a [`FakeSleeper`] instead, so realistic backoff policies
/// (real `base_backoff`, real jitter arithmetic) can be exercised without
/// paying wall-clock time — the requested durations are still recorded and
/// observable.
pub trait Sleeper: Send {
    /// Waits (or pretends to wait) for `d`.
    fn sleep(&mut self, d: Duration);
}

/// The production sleeper: `std::thread::sleep`.
#[derive(Debug, Default)]
pub struct WallClockSleeper;

impl Sleeper for WallClockSleeper {
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A sleeper that only records what it was asked to sleep, never blocking.
/// Clone-shared via [`FakeSleeper::total_ns`] so a test can assert on the
/// virtual time a retry schedule would have cost.
#[derive(Clone, Debug, Default)]
pub struct FakeSleeper {
    slept_ns: Arc<AtomicU64>,
}

impl FakeSleeper {
    /// A fresh recording sleeper.
    pub fn new() -> Self {
        FakeSleeper::default()
    }

    /// Handle to the accumulated virtual sleep time (nanoseconds).
    pub fn total_ns(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.slept_ns)
    }
}

impl Sleeper for FakeSleeper {
    fn sleep(&mut self, d: Duration) {
        self.slept_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Cached global-registry handles for the resilience-layer metrics.
struct ResilienceMetrics {
    backoff_sleeps: sharoes_obs::Counter,
    backoff_slept_ns: sharoes_obs::Counter,
    desyncs: sharoes_obs::Counter,
    batch_splits: sharoes_obs::Counter,
}

fn resilience_metrics() -> &'static ResilienceMetrics {
    static METRICS: OnceLock<ResilienceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ResilienceMetrics {
        backoff_sleeps: sharoes_obs::counter("net_backoff_sleeps_total"),
        backoff_slept_ns: sharoes_obs::counter("net_backoff_slept_ns"),
        desyncs: sharoes_obs::counter("net_desyncs_total"),
        batch_splits: sharoes_obs::counter("net_batch_splits_total"),
    })
}

/// A factory producing fresh connections to the SSP.
///
/// Implemented for any `FnMut() -> Result<Box<dyn Transport>, NetError>`,
/// e.g. a closure around [`crate::transport::TcpTransport::connect_with`]
/// or one building a [`crate::fault::FaultInjector`] over a shared fault
/// schedule.
pub trait Connector: Send {
    /// Opens a new connection.
    fn connect(&mut self) -> Result<Box<dyn Transport>, NetError>;
}

impl<F> Connector for F
where
    F: FnMut() -> Result<Box<dyn Transport>, NetError> + Send,
{
    fn connect(&mut self) -> Result<Box<dyn Transport>, NetError> {
        self()
    }
}

/// Retry/backoff parameters.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum attempts per call (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x5AA0_E55E_0BAC_0FF5,
        }
    }
}

impl RetryPolicy {
    /// A policy with zero backoff, for tests and chaos runs where wall-clock
    /// sleeping only slows the suite down.
    pub fn fast(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before attempt `n` (0-based: attempt 0 never sleeps),
    /// with `jitter` in `0..=100` adding up to +100% of the base delay.
    fn backoff(&self, n: u32, jitter_pct: u64) -> Duration {
        if n == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.base_backoff.saturating_mul(1u32 << (n - 1).min(16));
        let capped = exp.min(self.max_backoff);
        capped + capped.mul_f64(jitter_pct as f64 / 100.0)
    }
}

/// A transport that retries, backs off, and reconnects.
pub struct ResilientTransport {
    connector: Box<dyn Connector>,
    policy: RetryPolicy,
    conn: Option<Box<dyn Transport>>,
    jitter: HmacDrbg,
    meter: Arc<CostMeter>,
    sleeper: Box<dyn Sleeper>,
}

impl ResilientTransport {
    /// Builds the decorator and eagerly opens the first connection so the
    /// shared meter (and early reachability errors) surface at build time.
    /// Backoff delays really sleep; see [`Self::connect_with_sleeper`].
    pub fn connect(connector: Box<dyn Connector>, policy: RetryPolicy) -> Result<Self, NetError> {
        Self::connect_with_sleeper(connector, policy, Box::new(WallClockSleeper))
    }

    /// Like [`Self::connect`] but with an injected [`Sleeper`], so chaos
    /// suites can run realistic backoff policies without wall-clock waits.
    pub fn connect_with_sleeper(
        mut connector: Box<dyn Connector>,
        policy: RetryPolicy,
        sleeper: Box<dyn Sleeper>,
    ) -> Result<Self, NetError> {
        let conn = connector.connect()?;
        let meter = Arc::clone(conn.meter());
        let jitter = HmacDrbg::from_seed_u64(policy.jitter_seed);
        Ok(ResilientTransport { connector, policy, conn: Some(conn), jitter, meter, sleeper })
    }

    /// True while no live connection is held (the last attempt tore it
    /// down and no call has re-established one yet).
    pub fn is_disconnected(&self) -> bool {
        self.conn.is_none()
    }

    /// Returns the live connection, reconnecting if necessary.
    fn ensure_conn(&mut self) -> Result<&mut Box<dyn Transport>, NetError> {
        if self.conn.is_none() {
            let conn = self.connector.connect()?;
            self.meter.charge_reconnect();
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }

    fn sleep_before(&mut self, attempt: u32) {
        let jitter_pct = self.jitter.next_u64() % 101;
        let d = self.policy.backoff(attempt, jitter_pct);
        if !d.is_zero() {
            let m = resilience_metrics();
            m.backoff_sleeps.inc();
            m.backoff_slept_ns.add(d.as_nanos() as u64);
            self.sleeper.sleep(d);
        }
    }

    /// One request through the full retry/reconnect/backoff schedule.
    fn call_retrying(&mut self, request: &Request) -> Result<Response, NetError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.meter.charge_retry();
                self.sleep_before(attempt);
            }
            let conn = match self.ensure_conn() {
                Ok(c) => c,
                Err(e) => {
                    // Connect failures are connectivity loss: retryable.
                    last_err = Some(e);
                    continue;
                }
            };
            match conn.call(request) {
                Ok(response) => {
                    if let Response::Error(msg) = &response {
                        let err = NetError::Remote(msg.clone());
                        if err.class() == ErrorClass::Fatal {
                            return Err(err);
                        }
                        // Transient server error: the stream is still in
                        // sync, so retry on the same connection.
                        last_err = Some(err);
                        continue;
                    }
                    if !request.matches_response(&response) {
                        // Desynchronized stream (a late reply slipped in):
                        // this connection can no longer be trusted to pair
                        // frames correctly. Drop it and retry fresh.
                        self.conn = None;
                        resilience_metrics().desyncs.inc();
                        sharoes_obs::obs_event!(sharoes_obs::Level::Warn, "net.desync", attempt);
                        last_err = Some(NetError::Codec("response does not match request"));
                        continue;
                    }
                    return Ok(response);
                }
                Err(e) => match e.class() {
                    ErrorClass::Fatal => return Err(e),
                    ErrorClass::Retryable => {
                        // Connection-level failure: the stream state is
                        // unknown, so reconnect before the next attempt.
                        self.conn = None;
                        last_err = Some(e);
                    }
                },
            }
        }
        Err(last_err.unwrap_or(NetError::Closed))
    }

    /// Batch-aware fatal handling: a fatal error on a multi-item batch is
    /// usually *one* bad item (an oversized value, a key the server
    /// rejects) poisoning the whole round trip. Bisect the batch and rerun
    /// each half through the full retry schedule, recursively, until the
    /// failure is pinned to a single item. Healthy items are applied
    /// (idempotently — re-running a committed half stores the same bytes)
    /// and the surfaced error names only the true culprit's sub-batch.
    fn isolate_batch_failure(
        &mut self,
        request: &Request,
        err: NetError,
    ) -> Result<Response, NetError> {
        let Some((left, right)) = split_batch(request) else { return Err(err) };
        resilience_metrics().batch_splits.inc();
        let halves = 2u32;
        sharoes_obs::obs_event!(sharoes_obs::Level::Warn, "net.batch_split", halves);
        let left_result = self.call(&left);
        let right_result = self.call(&right);
        merge_halves(left_result, right_result)
    }
}

/// Splits a multi-item batch request down the middle. `None` for
/// non-batch requests and single-item batches (nothing left to isolate).
fn split_batch(request: &Request) -> Option<(Request, Request)> {
    match request {
        Request::PutMany { items } if items.len() >= 2 => {
            let (l, r) = items.split_at(items.len() / 2);
            Some((Request::PutMany { items: l.to_vec() }, Request::PutMany { items: r.to_vec() }))
        }
        Request::GetMany { keys } if keys.len() >= 2 => {
            let (l, r) = keys.split_at(keys.len() / 2);
            Some((Request::GetMany { keys: l.to_vec() }, Request::GetMany { keys: r.to_vec() }))
        }
        Request::DeleteMany { keys } if keys.len() >= 2 => {
            let (l, r) = keys.split_at(keys.len() / 2);
            Some((
                Request::DeleteMany { keys: l.to_vec() },
                Request::DeleteMany { keys: r.to_vec() },
            ))
        }
        _ => None,
    }
}

/// Recombines two half-batch outcomes. The first error wins (its half —
/// recursively bisected — pins the failure to a single item).
fn merge_halves(
    left: Result<Response, NetError>,
    right: Result<Response, NetError>,
) -> Result<Response, NetError> {
    match (left, right) {
        (Ok(Response::Ok), Ok(Response::Ok)) => Ok(Response::Ok),
        (Ok(Response::Objects(mut l)), Ok(Response::Objects(r))) => {
            l.extend(r);
            Ok(Response::Objects(l))
        }
        (Err(e), _) | (_, Err(e)) => Err(e),
        (Ok(_), Ok(_)) => Err(NetError::Codec("mismatched batch half responses")),
    }
}

impl Transport for ResilientTransport {
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        match self.call_retrying(request) {
            // Retryable exhaustion surfaces as-is; a *fatal* failure on a
            // batch gets bisected to isolate the poisoned item.
            Err(e) if e.class() == ErrorClass::Fatal => self.isolate_batch_failure(request, e),
            other => other,
        }
    }

    fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjector, FaultSchedule};
    use crate::message::ObjectKey;
    use crate::transport::{InMemoryTransport, RequestHandler};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    struct MapStore(Mutex<HashMap<ObjectKey, Vec<u8>>>);

    impl RequestHandler for MapStore {
        fn handle(&self, request: Request) -> Response {
            match request {
                Request::Ping => Response::Pong,
                Request::Put { key, value } => {
                    self.0.lock().unwrap().insert(key, value);
                    Response::Ok
                }
                Request::Get { key } => Response::Object(self.0.lock().unwrap().get(&key).cloned()),
                _ => Response::Error("unsupported in test".into()),
            }
        }
    }

    /// A connector over a shared in-memory store + shared fault schedule:
    /// the same shape the chaos suite uses.
    fn faulty_connector(
        handler: Arc<MapStore>,
        schedule: Arc<Mutex<FaultSchedule>>,
        meter: Arc<CostMeter>,
    ) -> Box<dyn Connector> {
        Box::new(move || -> Result<Box<dyn Transport>, NetError> {
            let inner = InMemoryTransport::with_meter(
                Arc::clone(&handler) as Arc<dyn RequestHandler>,
                Arc::clone(&meter),
            );
            Ok(Box::new(FaultInjector::new(inner, Arc::clone(&schedule))))
        })
    }

    #[test]
    fn clean_path_passes_through() {
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let schedule = FaultSchedule::shared(FaultConfig::at_rate(0.0), 1);
        let meter = CostMeter::new_shared();
        let mut t = ResilientTransport::connect(
            faulty_connector(handler, schedule, meter),
            RetryPolicy::fast(3),
        )
        .unwrap();
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        let s = t.meter().sample();
        assert_eq!(s.retries, 0);
        assert_eq!(s.reconnects, 0);
    }

    #[test]
    fn survives_heavy_fault_rates() {
        // At a 40% fault rate, 8 attempts make per-call failure vanishingly
        // unlikely (0.4^8 ≈ 0.07%), and the seed pins the exact schedule.
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let schedule = FaultSchedule::shared(FaultConfig::at_rate(0.4), 42);
        let meter = CostMeter::new_shared();
        let mut t = ResilientTransport::connect(
            faulty_connector(Arc::clone(&handler), schedule, meter),
            RetryPolicy::fast(8),
        )
        .unwrap();
        for i in 0..50u64 {
            let key = ObjectKey::metadata(i, [0; 16]);
            assert_eq!(
                t.call(&Request::Put { key, value: vec![i as u8; 64] }).unwrap(),
                Response::Ok
            );
            assert_eq!(
                t.call(&Request::Get { key }).unwrap(),
                Response::Object(Some(vec![i as u8; 64]))
            );
        }
        let s = t.meter().sample();
        assert!(s.retries > 0, "a 40% fault rate must force retries");
        assert!(s.faults_injected > 0);
    }

    #[test]
    fn fatal_errors_surface_immediately() {
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        let schedule = FaultSchedule::shared(FaultConfig::at_rate(0.0), 2);
        let meter = CostMeter::new_shared();
        let mut t = ResilientTransport::connect(
            faulty_connector(handler, schedule, meter),
            RetryPolicy::fast(5),
        )
        .unwrap();
        // MapStore answers Stats with a non-transient error: fatal, no retries.
        let err = t.call(&Request::Stats).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)));
        assert_eq!(err.class(), ErrorClass::Fatal);
        assert_eq!(t.meter().sample().retries, 0);
    }

    #[test]
    fn retries_are_bounded() {
        // A connector whose every connection always fails: the call must
        // give up after max_attempts, not spin forever.
        struct DeadTransport(Arc<CostMeter>);
        impl Transport for DeadTransport {
            fn call(&mut self, _request: &Request) -> Result<Response, NetError> {
                Err(NetError::Io(std::io::Error::from(std::io::ErrorKind::ConnectionReset)))
            }
            fn meter(&self) -> &Arc<CostMeter> {
                &self.0
            }
        }
        let meter = CostMeter::new_shared();
        let dials = Arc::new(AtomicU64::new(0));
        let dials2 = Arc::clone(&dials);
        let meter2 = Arc::clone(&meter);
        let connector = Box::new(move || -> Result<Box<dyn Transport>, NetError> {
            dials2.fetch_add(1, Ordering::SeqCst);
            Ok(Box::new(DeadTransport(Arc::clone(&meter2))) as Box<dyn Transport>)
        });
        let mut t = ResilientTransport::connect(connector, RetryPolicy::fast(4)).unwrap();
        let err = t.call(&Request::Ping).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Retryable);
        assert!(t.is_disconnected());
        let s = t.meter().sample();
        assert_eq!(s.retries, 3, "4 attempts = 3 retries");
        // Initial dial + 3 redials (each failed attempt drops the conn).
        assert_eq!(dials.load(Ordering::SeqCst), 4);
        assert_eq!(s.reconnects, 3);
    }

    #[test]
    fn reconnects_after_disconnect_faults() {
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        // Only disconnect faults, always.
        let mut config = FaultConfig::at_rate(1.0);
        config.weights = [0, 0, 1, 0, 0, 0, 0];
        let schedule = FaultSchedule::shared(config, 3);
        let meter = CostMeter::new_shared();
        let mut t = ResilientTransport::connect(
            faulty_connector(Arc::clone(&handler), Arc::clone(&schedule), meter),
            RetryPolicy::fast(3),
        )
        .unwrap();
        // Every attempt disconnects; retries are bounded.
        assert!(t.call(&Request::Ping).is_err());
        assert!(t.meter().sample().reconnects >= 2);
        // Quiet the schedule; the next call dials a fresh connection and
        // succeeds.
        schedule.lock().unwrap().config.rate = 0.0;
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn desync_detected_and_recovered() {
        let handler = Arc::new(MapStore(Mutex::new(HashMap::new())));
        // Only stale-response faults, always (injectable only when the
        // remembered reply has a mismatched shape, i.e. guaranteed desync).
        let mut config = FaultConfig::at_rate(1.0);
        config.weights = [0, 0, 0, 0, 0, 1, 0];
        let schedule = FaultSchedule::shared(config, 4);
        let meter = CostMeter::new_shared();
        let mut t = ResilientTransport::connect(
            faulty_connector(Arc::clone(&handler), Arc::clone(&schedule), meter),
            RetryPolicy::fast(4),
        )
        .unwrap();
        let key = ObjectKey::metadata(1, [1; 16]);
        // First call has nothing to replay: clean.
        assert_eq!(t.call(&Request::Put { key, value: vec![7] }).unwrap(), Response::Ok);
        // The Get draws the stale `Ok`; the decorator detects the shape
        // mismatch, reconnects, and the retry (whose replay of the same-shape
        // `Object` reply is refused by the injector) succeeds.
        assert_eq!(t.call(&Request::Get { key }).unwrap(), Response::Object(Some(vec![7])));
        let s = t.meter().sample();
        assert!(s.retries >= 1, "desync must trigger a retry");
        assert!(s.reconnects >= 1, "desync must drop the connection");
    }

    #[test]
    fn transient_server_errors_retry_without_reconnect() {
        // A handler that sheds the first two calls, then recovers.
        struct Flaky(AtomicU64);
        impl RequestHandler for Flaky {
            fn handle(&self, _request: Request) -> Response {
                if self.0.fetch_add(1, Ordering::SeqCst) < 2 {
                    Response::Error("transient: warming up".into())
                } else {
                    Response::Pong
                }
            }
        }
        let handler = Arc::new(Flaky(AtomicU64::new(0)));
        let connector = Box::new(move || -> Result<Box<dyn Transport>, NetError> {
            Ok(Box::new(InMemoryTransport::new(Arc::clone(&handler) as Arc<dyn RequestHandler>)))
        });
        let mut t = ResilientTransport::connect(connector, RetryPolicy::fast(5)).unwrap();
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        let s = t.meter().sample();
        assert_eq!(s.retries, 2);
        assert_eq!(s.reconnects, 0, "transient errors keep the connection");
    }

    /// A store that fatally rejects exactly one poisoned key, in singles
    /// and batches alike — the shape of "one oversized/forbidden item
    /// poisons the whole batch round trip".
    struct PoisonStore {
        poison: ObjectKey,
        map: Mutex<HashMap<ObjectKey, Vec<u8>>>,
    }

    impl RequestHandler for PoisonStore {
        fn handle(&self, request: Request) -> Response {
            let keys: Vec<ObjectKey> = match &request {
                Request::Put { key, .. } | Request::Get { key } | Request::Delete { key } => {
                    vec![*key]
                }
                Request::PutMany { items } => items.iter().map(|(k, _)| *k).collect(),
                Request::GetMany { keys } | Request::DeleteMany { keys } => keys.clone(),
                _ => Vec::new(),
            };
            if keys.contains(&self.poison) {
                return Response::Error("value exceeds server limit".into());
            }
            let mut map = self.map.lock().unwrap();
            match request {
                Request::PutMany { items } => {
                    for (k, v) in items {
                        map.insert(k, v);
                    }
                    Response::Ok
                }
                Request::GetMany { keys } => {
                    Response::Objects(keys.iter().map(|k| map.get(k).cloned()).collect())
                }
                Request::DeleteMany { keys } => {
                    for k in &keys {
                        map.remove(k);
                    }
                    Response::Ok
                }
                _ => Response::Error("unsupported in test".into()),
            }
        }
    }

    fn poison_transport(poison: ObjectKey) -> (ResilientTransport, Arc<PoisonStore>) {
        let handler = Arc::new(PoisonStore { poison, map: Mutex::new(HashMap::new()) });
        let h = Arc::clone(&handler);
        let connector = Box::new(move || -> Result<Box<dyn Transport>, NetError> {
            Ok(Box::new(InMemoryTransport::new(Arc::clone(&h) as Arc<dyn RequestHandler>)))
        });
        (ResilientTransport::connect(connector, RetryPolicy::fast(2)).unwrap(), handler)
    }

    #[test]
    fn fatal_batch_failure_is_bisected_to_the_poisoned_item() {
        let poison = ObjectKey::metadata(2, [2; 16]);
        let (mut t, handler) = poison_transport(poison);
        let items: Vec<(ObjectKey, Vec<u8>)> =
            (0..8u64).map(|i| (ObjectKey::metadata(i, [i as u8; 16]), vec![i as u8; 8])).collect();
        let err = t.call(&Request::PutMany { items }).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Fatal, "culprit must still surface: {err}");
        // Every healthy item landed despite the poisoned batch-mate.
        let map = handler.map.lock().unwrap();
        assert_eq!(map.len(), 7, "7 of 8 items are healthy");
        for i in 0..8u64 {
            let key = ObjectKey::metadata(i, [i as u8; 16]);
            assert_eq!(map.contains_key(&key), i != 2, "item {i}");
        }
    }

    #[test]
    fn get_many_halves_merge_in_order() {
        let absent_poison = ObjectKey::metadata(99, [9; 16]);
        let (mut t, handler) = poison_transport(absent_poison);
        let keys: Vec<ObjectKey> =
            (0..5u64).map(|i| ObjectKey::metadata(i, [i as u8; 16])).collect();
        {
            let mut map = handler.map.lock().unwrap();
            for (i, k) in keys.iter().enumerate() {
                if i % 2 == 0 {
                    map.insert(*k, vec![i as u8; 4]);
                }
            }
        }
        // Clean path first: no splitting without a fatal error.
        let got = t.call(&Request::GetMany { keys: keys.clone() }).unwrap();
        match got {
            Response::Objects(vs) => {
                assert_eq!(vs.len(), 5);
                for (i, v) in vs.iter().enumerate() {
                    assert_eq!(v.is_some(), i % 2 == 0, "slot {i}");
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
        // With the poison appended, the split still returns an error (the
        // caller must know the batch did not fully resolve)…
        let mut with_poison = keys;
        with_poison.push(absent_poison);
        let err = t.call(&Request::GetMany { keys: with_poison }).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Fatal);
    }

    #[test]
    fn single_item_batches_do_not_split() {
        let poison = ObjectKey::metadata(2, [2; 16]);
        let (mut t, _handler) = poison_transport(poison);
        let err = t.call(&Request::PutMany { items: vec![(poison, vec![1])] }).unwrap_err();
        assert_eq!(err.class(), ErrorClass::Fatal);
        assert_eq!(t.meter().sample().retries, 0, "fatal singles surface without retry");
    }

    #[test]
    fn fake_sleeper_absorbs_real_backoff_policies() {
        // A policy with real (wall-clock-visible) backoff, driven through a
        // recording sleeper: the call path must not actually block, but the
        // virtual time it would have slept must be observable and exact.
        // Shed the first three calls so three backoffs fire.
        struct Flaky(AtomicU64);
        impl RequestHandler for Flaky {
            fn handle(&self, _request: Request) -> Response {
                if self.0.fetch_add(1, Ordering::SeqCst) < 3 {
                    Response::Error("transient: shedding".into())
                } else {
                    Response::Pong
                }
            }
        }
        let flaky = Arc::new(Flaky(AtomicU64::new(0)));
        let connector = Box::new(move || -> Result<Box<dyn Transport>, NetError> {
            Ok(Box::new(InMemoryTransport::new(Arc::clone(&flaky) as Arc<dyn RequestHandler>)))
        });
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 11,
        };
        let sleeper = FakeSleeper::new();
        let slept = sleeper.total_ns();
        let start = std::time::Instant::now();
        let mut t =
            ResilientTransport::connect_with_sleeper(connector, policy.clone(), Box::new(sleeper))
                .unwrap();
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "fake sleeper must not block for the backoff"
        );
        // Expected virtual sleep: the same jitter stream the transport drew.
        let mut jitter = HmacDrbg::from_seed_u64(policy.jitter_seed);
        let expect: u64 =
            (1..=3u32).map(|n| policy.backoff(n, jitter.next_u64() % 101).as_nanos() as u64).sum();
        assert_eq!(slept.load(Ordering::SeqCst), expect);
        assert_eq!(t.meter().sample().retries, 3);
    }

    #[test]
    fn backoff_schedule_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 9,
        };
        // Without jitter: 0, 10, 20, 40, 40 (capped), 40 …
        assert_eq!(policy.backoff(0, 0), Duration::ZERO);
        assert_eq!(policy.backoff(1, 0), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, 0), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, 0), Duration::from_millis(40));
        assert_eq!(policy.backoff(4, 0), Duration::from_millis(40));
        // Jitter adds at most +100% of the capped delay.
        assert_eq!(policy.backoff(2, 100), Duration::from_millis(40));
        // The jitter stream is a pure function of the seed.
        let mut a = HmacDrbg::from_seed_u64(policy.jitter_seed);
        let mut b = HmacDrbg::from_seed_u64(policy.jitter_seed);
        let da: Vec<u64> = (0..8).map(|_| a.next_u64() % 101).collect();
        let db: Vec<u64> = (0..8).map(|_| b.next_u64() % 101).collect();
        assert_eq!(da, db);
    }
}
