//! Deterministic wide-area network cost model.
//!
//! The paper's testbed is a client in Birmingham, AL reaching an SSP at
//! Georgia Tech over a home DSL line with measured upload 850 Kbit/s and
//! download 350 Kbit/s (§V-A). We model each request/response as
//! `RTT + bytes_up/upload + bytes_down/download` plus per-message framing
//! overhead, which is what lets the benchmark harness reproduce the paper's
//! *figure shapes* deterministically on any machine.

use crate::cost::CostSample;
use std::time::Duration;

/// Link parameters for the virtual-clock conversion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetModel {
    /// Client upstream bandwidth in bits per second.
    pub upload_bps: f64,
    /// Client downstream bandwidth in bits per second.
    pub download_bps: f64,
    /// Round-trip latency.
    pub rtt: Duration,
    /// Fixed protocol overhead bytes charged per message in each direction
    /// (TCP/IP + framing).
    pub per_message_overhead: u64,
}

impl NetModel {
    /// The paper's measured DSL link (850 Kbit/s up, 350 Kbit/s down). The
    /// RTT is calibrated to Figure 13's observation that getattr "completes
    /// in a little over 100 ms, with the majority of the cost coming from
    /// the network component" — consumer DSL latency to a shared server
    /// ~150 miles away.
    pub fn paper_dsl() -> Self {
        NetModel {
            upload_bps: 850_000.0,
            download_bps: 350_000.0,
            rtt: Duration::from_millis(90),
            per_message_overhead: 64,
        }
    }

    /// A fast enterprise WAN (100 Mbit/s symmetric, 10 ms RTT) for the
    /// network-sweep ablation.
    pub fn enterprise_wan() -> Self {
        NetModel {
            upload_bps: 100_000_000.0,
            download_bps: 100_000_000.0,
            rtt: Duration::from_millis(10),
            per_message_overhead: 64,
        }
    }

    /// A LAN-like link (1 Gbit/s, 0.5 ms RTT).
    pub fn lan() -> Self {
        NetModel {
            upload_bps: 1_000_000_000.0,
            download_bps: 1_000_000_000.0,
            rtt: Duration::from_micros(500),
            per_message_overhead: 64,
        }
    }

    /// Transfer time for one message pair of the given sizes.
    pub fn message_time(&self, bytes_up: u64, bytes_down: u64) -> Duration {
        let up = (bytes_up + self.per_message_overhead) as f64 * 8.0 / self.upload_bps;
        let down = (bytes_down + self.per_message_overhead) as f64 * 8.0 / self.download_bps;
        self.rtt + Duration::from_secs_f64(up + down)
    }

    /// Total network time for an accumulated [`CostSample`].
    ///
    /// Bandwidth terms aggregate linearly; latency is charged once per round
    /// trip.
    pub fn network_time(&self, cost: &CostSample) -> Duration {
        let overhead = cost.round_trips * self.per_message_overhead;
        let up = (cost.bytes_up + overhead) as f64 * 8.0 / self.upload_bps;
        let down = (cost.bytes_down + overhead) as f64 * 8.0 / self.download_bps;
        self.rtt * cost.round_trips as u32 + Duration::from_secs_f64(up + down)
    }

    /// Full virtual-clock time for a sample: network + crypto + other.
    ///
    /// `cpu_scale` rescales measured local CPU time to a reference machine
    /// (1.0 = this machine).
    pub fn total_time(&self, cost: &CostSample, cpu_scale: f64) -> Duration {
        let cpu =
            Duration::from_nanos(((cost.crypto_ns + cost.other_ns) as f64 * cpu_scale) as u64);
        self.network_time(cost) + cpu
    }

    /// The NETWORK / CRYPTO / OTHER decomposition (Figure 13) in seconds.
    pub fn breakdown(&self, cost: &CostSample, cpu_scale: f64) -> (f64, f64, f64) {
        (
            self.network_time(cost).as_secs_f64(),
            cost.crypto_ns as f64 * cpu_scale / 1e9,
            cost.other_ns as f64 * cpu_scale / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_link_is_asymmetric() {
        let m = NetModel::paper_dsl();
        // Uploading 1 MB is faster than downloading it on this link.
        let up_heavy = m.message_time(1_000_000, 0);
        let down_heavy = m.message_time(0, 1_000_000);
        assert!(down_heavy > up_heavy);
        // 1 MB down at 350 kbit/s ≈ 22.9 s.
        assert!((down_heavy.as_secs_f64() - 22.9).abs() < 0.5, "{down_heavy:?}");
    }

    #[test]
    fn rtt_charged_per_round_trip() {
        let m = NetModel::paper_dsl();
        let cost = CostSample { round_trips: 10, ..Default::default() };
        let t = m.network_time(&cost);
        assert!(t >= m.rtt * 10);
    }

    #[test]
    fn zero_cost_is_zero_time() {
        let m = NetModel::lan();
        assert_eq!(m.network_time(&CostSample::default()), Duration::ZERO);
    }

    #[test]
    fn cpu_scale_applies_to_crypto_only_components() {
        let m = NetModel::lan();
        let cost =
            CostSample { crypto_ns: 1_000_000_000, other_ns: 500_000_000, ..Default::default() };
        let t1 = m.total_time(&cost, 1.0);
        let t2 = m.total_time(&cost, 2.0);
        assert!((t2.as_secs_f64() - 2.0 * t1.as_secs_f64()).abs() < 1e-6);
        let (n, c, o) = m.breakdown(&cost, 1.0);
        assert_eq!(n, 0.0);
        assert!((c - 1.0).abs() < 1e-9);
        assert!((o - 0.5).abs() < 1e-9);
    }

    #[test]
    fn faster_links_are_faster() {
        let cost = CostSample {
            bytes_up: 100_000,
            bytes_down: 100_000,
            round_trips: 5,
            ..Default::default()
        };
        let dsl = NetModel::paper_dsl().network_time(&cost);
        let wan = NetModel::enterprise_wan().network_time(&cost);
        let lan = NetModel::lan().network_time(&cost);
        assert!(dsl > wan);
        assert!(wan > lan);
    }
}
