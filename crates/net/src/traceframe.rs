//! Wire propagation of trace context: an optional, checksummed header
//! prefixed to a request frame's body, plus the wire form of trace events
//! for the `Trace` scrape op.
//!
//! Layout (39 bytes, all big-endian):
//!
//! ```text
//! +------+------+---------+----------+---------+-----------+----------+
//! | 0xC7 | 0x9A | version | trace_id | span_id | parent_id | checksum |
//! |  1   |  1   |    1    |    16    |    8    |     8     |    4     |
//! +------+------+---------+----------+---------+-----------+----------+
//! ```
//!
//! The checksum is FNV-1a-32 over the preceding 35 bytes — not a
//! security boundary (frames already cross an untrusted SSP; integrity
//! of *data* is the crypto layer's job) but enough to turn a bit-flipped
//! or mis-split header into a typed error instead of a garbage trace.
//!
//! Backward compatibility: a frame whose first two bytes are not the
//! magic pair is an untraced body and parses exactly as before. The
//! magic byte `0xC7` can never collide with a legacy frame: request and
//! response tags are small integers (currently ≤ 10).

use crate::error::NetError;
use crate::wire::{Cursor, WireRead, WireWrite};
use sharoes_obs::{EventKind, Level, OwnedEvent, TraceContext, TraceEvent};

/// First magic byte of a trace header.
pub const TRACE_MAGIC0: u8 = 0xC7;
/// Second magic byte of a trace header.
pub const TRACE_MAGIC1: u8 = 0x9A;
/// The only header version this build understands.
pub const TRACE_HEADER_VERSION: u8 = 1;
/// Total header length in bytes.
pub const TRACE_HEADER_LEN: usize = 39;

fn fnv1a_32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes `ctx` as a 39-byte header.
pub fn encode_header(ctx: &TraceContext) -> [u8; TRACE_HEADER_LEN] {
    let mut out = [0u8; TRACE_HEADER_LEN];
    out[0] = TRACE_MAGIC0;
    out[1] = TRACE_MAGIC1;
    out[2] = TRACE_HEADER_VERSION;
    out[3..19].copy_from_slice(&ctx.trace_id.to_be_bytes());
    out[19..27].copy_from_slice(&ctx.span_id.to_be_bytes());
    out[27..35].copy_from_slice(&ctx.parent_id.to_be_bytes());
    let sum = fnv1a_32(&out[..35]);
    out[35..39].copy_from_slice(&sum.to_be_bytes());
    out
}

/// Prefixes `body` with the header for `ctx`.
pub fn attach(ctx: &TraceContext, body: Vec<u8>) -> Vec<u8> {
    let mut framed = Vec::with_capacity(TRACE_HEADER_LEN + body.len());
    framed.extend_from_slice(&encode_header(ctx));
    framed.extend_from_slice(&body);
    framed
}

/// Splits an incoming frame into its optional trace context and the
/// message body. Frames not starting with the magic pair are untraced
/// legacy bodies and pass through unchanged; frames that *do* start with
/// it must carry a complete, checksummed, known-version header or the
/// whole frame is rejected with a typed [`NetError::Codec`].
pub fn split_header(frame: &[u8]) -> Result<(Option<TraceContext>, &[u8]), NetError> {
    if frame.len() < 2 || frame[0] != TRACE_MAGIC0 || frame[1] != TRACE_MAGIC1 {
        return Ok((None, frame));
    }
    if frame.len() < TRACE_HEADER_LEN {
        return Err(NetError::Codec("trace header truncated"));
    }
    let (head, body) = frame.split_at(TRACE_HEADER_LEN);
    let sum = u32::from_be_bytes(head[35..39].try_into().expect("4-byte slice"));
    if sum != fnv1a_32(&head[..35]) {
        return Err(NetError::Codec("trace header checksum mismatch"));
    }
    if head[2] != TRACE_HEADER_VERSION {
        return Err(NetError::Codec("unsupported trace header version"));
    }
    let ctx = TraceContext {
        trace_id: u128::from_be_bytes(head[3..19].try_into().expect("16-byte slice")),
        span_id: u64::from_be_bytes(head[19..27].try_into().expect("8-byte slice")),
        parent_id: u64::from_be_bytes(head[27..35].try_into().expect("8-byte slice")),
    };
    Ok((Some(ctx), body))
}

/// The wire form of one trace event, as returned by the `Trace` scrape
/// op. Mirrors [`TraceEvent`] with owned strings plus a `node` stamp the
/// cluster fan-out fills in when merging several rings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEventWire {
    /// Per-process monotonic sequence number.
    pub seq: u64,
    /// Timestamp (sequence number in deterministic mode).
    pub time_ns: u64,
    /// Thread-local nesting depth when recorded.
    pub depth: u16,
    /// Severity.
    pub level: Level,
    /// Enter/exit/instant.
    pub kind: EventKind,
    /// 128-bit trace id (0 = untraced).
    pub trace_id: u128,
    /// Owning span id.
    pub span_id: u64,
    /// Owning span's parent id.
    pub parent_id: u64,
    /// Span/event name.
    pub name: String,
    /// Rendered `key=value` fields.
    pub fields: String,
    /// Node the event was scraped from ("" until a merger stamps it).
    pub node: String,
}

impl From<&TraceEvent> for TraceEventWire {
    fn from(e: &TraceEvent) -> TraceEventWire {
        TraceEventWire {
            seq: e.seq,
            time_ns: e.time_ns,
            depth: e.depth,
            level: e.level,
            kind: e.kind,
            trace_id: e.trace_id,
            span_id: e.span_id,
            parent_id: e.parent_id,
            name: e.name.to_string(),
            fields: e.fields.clone(),
            node: String::new(),
        }
    }
}

impl From<&TraceEventWire> for OwnedEvent {
    fn from(e: &TraceEventWire) -> OwnedEvent {
        OwnedEvent {
            seq: e.seq,
            time_ns: e.time_ns,
            depth: e.depth,
            level: e.level,
            kind: e.kind,
            trace_id: e.trace_id,
            span_id: e.span_id,
            parent_id: e.parent_id,
            name: e.name.clone(),
            fields: e.fields.clone(),
            node: e.node.clone(),
        }
    }
}

impl WireWrite for TraceEventWire {
    fn write(&self, out: &mut Vec<u8>) {
        self.seq.write(out);
        self.time_ns.write(out);
        self.depth.write(out);
        self.level.as_u8().write(out);
        self.kind.as_u8().write(out);
        self.trace_id.write(out);
        self.span_id.write(out);
        self.parent_id.write(out);
        self.name.write(out);
        self.fields.write(out);
        self.node.write(out);
    }
}

impl WireRead for TraceEventWire {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        Ok(TraceEventWire {
            seq: u64::read(r)?,
            time_ns: u64::read(r)?,
            depth: u16::read(r)?,
            level: Level::from_u8(u8::read(r)?).ok_or(NetError::Codec("unknown trace level"))?,
            kind: EventKind::from_u8(u8::read(r)?)
                .ok_or(NetError::Codec("unknown trace event kind"))?,
            trace_id: u128::read(r)?,
            span_id: u64::read(r)?,
            parent_id: u64::read(r)?,
            name: String::read(r)?,
            fields: String::read(r)?,
            node: String::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let ctx = TraceContext { trace_id: 0x0102_0304, span_id: 77, parent_id: 3 };
        let framed = attach(&ctx, vec![9, 8, 7]);
        assert_eq!(framed.len(), TRACE_HEADER_LEN + 3);
        let (got, body) = split_header(&framed).unwrap();
        assert_eq!(got, Some(ctx));
        assert_eq!(body, &[9, 8, 7]);
    }

    #[test]
    fn untraced_frames_pass_through() {
        let body = vec![0u8]; // a Ping request
        let (ctx, rest) = split_header(&body).unwrap();
        assert_eq!(ctx, None);
        assert_eq!(rest, &body[..]);
        // Even an empty frame is merely untraced, not an error.
        let (ctx, rest) = split_header(&[]).unwrap();
        assert_eq!(ctx, None);
        assert!(rest.is_empty());
    }

    #[test]
    fn damaged_headers_are_typed_errors() {
        let ctx = TraceContext { trace_id: 5, span_id: 6, parent_id: 0 };
        let framed = attach(&ctx, vec![1, 2, 3]);

        // Truncated mid-header.
        let err = split_header(&framed[..10]).unwrap_err();
        assert!(matches!(err, NetError::Codec("trace header truncated")), "{err:?}");

        // Any flipped bit in the covered region breaks the checksum.
        let mut flipped = framed.clone();
        flipped[20] ^= 0x40;
        let err = split_header(&flipped).unwrap_err();
        assert!(matches!(err, NetError::Codec("trace header checksum mismatch")), "{err:?}");

        // Unknown version (with a recomputed, valid checksum).
        let mut vers = encode_header(&ctx).to_vec();
        vers[2] = 9;
        let sum = fnv1a_32(&vers[..35]);
        vers[35..39].copy_from_slice(&sum.to_be_bytes());
        vers.extend_from_slice(&[1, 2, 3]);
        let err = split_header(&vers).unwrap_err();
        assert!(matches!(err, NetError::Codec("unsupported trace header version")), "{err:?}");
    }

    #[test]
    fn trace_event_wire_roundtrips() {
        let e = TraceEventWire {
            seq: 12,
            time_ns: 34,
            depth: 2,
            level: Level::Warn,
            kind: EventKind::Instant,
            trace_id: u128::MAX - 1,
            span_id: 55,
            parent_id: 44,
            name: "ssp.op".into(),
            fields: "op=\"get\"".into(),
            node: "node-a".into(),
        };
        let decoded = TraceEventWire::from_wire(&e.to_wire()).unwrap();
        assert_eq!(decoded, e);
        // Unknown level / kind bytes are rejected.
        let mut bad = e.to_wire();
        bad[18] = 99; // level byte: 8 seq + 8 time + 2 depth
        assert!(TraceEventWire::from_wire(&bad).is_err());
    }
}
