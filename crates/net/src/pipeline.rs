//! Request pipelining: many in-flight requests multiplexed over one
//! connection, matched back to callers by a correlation id.
//!
//! The legacy protocol is strictly FIFO — one request, one response, in
//! order — which caps a connection's throughput at one round trip per
//! network latency. Pipelining removes that cap: the client keeps writing
//! frames while earlier ones execute, and the server (whose worker pool
//! may finish requests out of order) tags each response with the id of the
//! request it answers.
//!
//! ## Correlation header
//!
//! An optional 10-byte header prefixed to a frame's body, in front of the
//! (also optional) trace header:
//!
//! ```text
//! +------+------+------------------+
//! | 0xC5 | 0x1D | correlation id   |
//! |  1   |  1   |   8 (u64 BE)     |
//! +------+------+------------------+
//! ```
//!
//! Frame body layout is therefore `[corr?][trace?][message]`. A frame whose
//! first two bytes are not the magic pair is an uncorrelated body and
//! parses exactly as before: the magic byte `0xC5` can never collide with
//! a legacy frame (request/response tags are small integers) nor with the
//! trace magic `0xC7`.
//!
//! The header is opt-in **per frame**. A server answers correlated
//! requests with correlated responses (possibly out of order) and
//! uncorrelated requests with bare in-order responses, so legacy
//! [`crate::TcpTransport`] clients keep working unchanged against a
//! pipelined server.
//!
//! ## Pieces
//!
//! * [`CorrDispatcher`] — socket-free bookkeeping: hands out ids, parks
//!   waiters, routes completions. Property-tested in isolation so the
//!   "never cross-match payloads" invariant does not depend on socket
//!   timing.
//! * [`PipelinedClient`] — a real connection: writer lock + reader thread
//!   over a [`CorrDispatcher`]. `&self` calls, so one client can serve
//!   many threads concurrently.
//! * [`PipelinedTransport`] — a [`Transport`] view over a shared client,
//!   for call sites built around the one-lane trait.

use crate::cost::CostMeter;
use crate::error::NetError;
use crate::message::{Request, Response};
use crate::traceframe;
use crate::transport::{read_frame, write_frame_vectored, Transport};
use crate::wire::{WireRead, WireWrite};
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// First magic byte of a correlation header.
pub const CORR_MAGIC0: u8 = 0xC5;
/// Second magic byte of a correlation header.
pub const CORR_MAGIC1: u8 = 0x1D;
/// Total correlation header length in bytes.
pub const CORR_HEADER_LEN: usize = 10;

/// Encodes the 10-byte correlation header for `id`.
pub fn corr_header(id: u64) -> [u8; CORR_HEADER_LEN] {
    let mut out = [0u8; CORR_HEADER_LEN];
    out[0] = CORR_MAGIC0;
    out[1] = CORR_MAGIC1;
    out[2..10].copy_from_slice(&id.to_be_bytes());
    out
}

/// Prefixes `body` with the correlation header for `id`.
pub fn attach_corr(id: u64, body: Vec<u8>) -> Vec<u8> {
    let mut framed = Vec::with_capacity(CORR_HEADER_LEN + body.len());
    framed.extend_from_slice(&corr_header(id));
    framed.extend_from_slice(&body);
    framed
}

/// Splits an optional correlation header off `frame`.
///
/// Returns `(None, frame)` when the frame does not start with the magic
/// pair (a legacy uncorrelated body). A frame that *does* start with the
/// magic but is too short to hold the id is a typed codec error, never a
/// silent fallthrough into the message parser.
pub fn split_corr(frame: &[u8]) -> Result<(Option<u64>, &[u8]), NetError> {
    if frame.len() < 2 || frame[0] != CORR_MAGIC0 || frame[1] != CORR_MAGIC1 {
        return Ok((None, frame));
    }
    if frame.len() < CORR_HEADER_LEN {
        return Err(NetError::Codec("truncated correlation header"));
    }
    let mut id_bytes = [0u8; 8];
    id_bytes.copy_from_slice(&frame[2..10]);
    Ok((Some(u64::from_be_bytes(id_bytes)), &frame[CORR_HEADER_LEN..]))
}

/// One registered in-flight slot: `None` until completed.
type Slot = Option<Result<Vec<u8>, String>>;

struct DispatchState {
    /// In-flight slots keyed by correlation id.
    slots: HashMap<u64, Slot>,
    /// Set once the connection is unrecoverable; every present and future
    /// waiter fails with this reason.
    dead: Option<String>,
}

/// Correlation bookkeeping for one pipelined connection.
///
/// Socket-free on purpose: completions can arrive in any order (the server
/// worker pool does not promise FIFO), slots can be abandoned (a waiter
/// timing out), and the whole dispatcher can be failed at once (connection
/// loss). Each delivered payload reaches exactly the waiter that
/// registered its id — never another.
pub struct CorrDispatcher {
    next_id: AtomicU64,
    state: Mutex<DispatchState>,
    cv: Condvar,
}

/// How many orphaned completions (response for an id nobody waits on —
/// e.g. a timed-out caller's late reply) arrived, process-wide.
fn orphan_counter() -> sharoes_obs::Counter {
    sharoes_obs::global().counter("net_corr_orphans_total")
}

impl Default for CorrDispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl CorrDispatcher {
    /// An empty dispatcher; ids start at 1.
    pub fn new() -> Self {
        CorrDispatcher {
            next_id: AtomicU64::new(1),
            state: Mutex::new(DispatchState { slots: HashMap::new(), dead: None }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, DispatchState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a fresh in-flight slot and returns its correlation id.
    ///
    /// Fails if the connection already died — no point queueing work that
    /// can never complete.
    pub fn register(&self) -> Result<u64, NetError> {
        let mut st = self.lock();
        if let Some(why) = &st.dead {
            return Err(dead_error(why));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        st.slots.insert(id, None);
        Ok(id)
    }

    /// Delivers the outcome for `id`, waking its waiter. A completion for
    /// an unknown id (waiter timed out and deregistered) is counted and
    /// dropped, never delivered elsewhere.
    pub fn complete(&self, id: u64, outcome: Result<Vec<u8>, String>) {
        let mut st = self.lock();
        match st.slots.get_mut(&id) {
            Some(slot) => {
                *slot = Some(outcome);
                self.cv.notify_all();
            }
            None => orphan_counter().inc(),
        }
    }

    /// Marks the connection dead: every current and future waiter gets a
    /// retryable error carrying `why`.
    pub fn fail_all(&self, why: &str) {
        let mut st = self.lock();
        if st.dead.is_none() {
            st.dead = Some(why.to_string());
        }
        self.cv.notify_all();
    }

    /// True once [`Self::fail_all`] has run.
    pub fn is_dead(&self) -> bool {
        self.lock().dead.is_some()
    }

    /// Blocks until the outcome for `id` arrives, the connection dies, or
    /// `timeout` elapses. The slot is always deregistered on return, so a
    /// late completion after a timeout becomes an orphan, not a
    /// cross-match.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            match st.slots.get(&id) {
                Some(Some(_)) => {
                    let outcome = st.slots.remove(&id).flatten().expect("checked above");
                    return outcome.map_err(NetError::Remote);
                }
                Some(None) => {}
                None => return Err(NetError::Codec("correlation id waited on twice")),
            }
            if let Some(why) = &st.dead {
                let err = dead_error(why);
                st.slots.remove(&id);
                return Err(err);
            }
            let now = Instant::now();
            if now >= deadline {
                st.slots.remove(&id);
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("pipelined call {id} timed out"),
                )));
            }
            let (g, _) =
                self.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }
}

/// A dead pipelined connection surfaces as a retryable I/O error so the
/// resilient layer reconnects, exactly like a torn legacy connection.
fn dead_error(why: &str) -> NetError {
    NetError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        format!("pipelined connection lost: {why}"),
    ))
}

/// Default bound on how long one pipelined call waits for its response.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// A pipelined TCP connection: `&self` calls from many threads multiplex
/// over one socket, matched back by correlation id.
pub struct PipelinedClient {
    writer: Mutex<TcpStream>,
    dispatcher: Arc<CorrDispatcher>,
    meter: Arc<CostMeter>,
    call_timeout: Duration,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
    sock: TcpStream,
}

impl PipelinedClient {
    /// Connects to a pipelined SSP server at `addr`.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::connect_with(addr, DEFAULT_CALL_TIMEOUT, CostMeter::new_shared())
    }

    /// Connects with an explicit per-call timeout and a shared meter.
    pub fn connect_with(
        addr: &str,
        call_timeout: Duration,
        meter: Arc<CostMeter>,
    ) -> Result<Self, NetError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        let writer = sock.try_clone()?;
        let reader_sock = sock.try_clone()?;
        let dispatcher = Arc::new(CorrDispatcher::new());
        let disp = Arc::clone(&dispatcher);
        let reader = std::thread::Builder::new()
            .name("ssp-pipeline-reader".into())
            .spawn(move || reader_loop(reader_sock, disp))
            .map_err(NetError::Io)?;
        Ok(PipelinedClient {
            writer: Mutex::new(writer),
            dispatcher,
            meter,
            call_timeout,
            reader: Mutex::new(Some(reader)),
            sock,
        })
    }

    /// The meter recording this connection's traffic.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// The dispatcher (exposed for tests probing liveness).
    pub fn dispatcher(&self) -> &CorrDispatcher {
        &self.dispatcher
    }

    /// Registers a slot and writes `[corr][trace?][request]` as one
    /// vectored frame. Returns the id and the framed byte count.
    fn send(&self, request: &Request) -> Result<(u64, u64), NetError> {
        let id = self.dispatcher.register()?;
        let header = corr_header(id);
        let mut body = request.to_wire();
        if let Some(ctx) = sharoes_obs::mint_child("ssp.rpc") {
            body = traceframe::attach(&ctx, body);
        }
        let sent = (CORR_HEADER_LEN + body.len() + 4) as u64;
        {
            let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            write_frame_vectored(&mut *w, &[&header, &body])?;
        }
        Ok((id, sent))
    }

    /// Waits for the response to `id`, charging the meter and shape-checking
    /// against the request that produced it.
    fn receive(&self, request: &Request, id: u64, sent: u64) -> Result<Response, NetError> {
        let body = self.dispatcher.wait(id, self.call_timeout)?;
        self.meter.charge_round_trip(sent, (CORR_HEADER_LEN + body.len() + 4) as u64);
        let response = Response::from_wire(&body)?;
        if !request.matches_response(&response) {
            return Err(NetError::Codec("response does not match request"));
        }
        Ok(response)
    }

    /// One full round trip. Takes `&self`: concurrent callers pipeline
    /// naturally, each matched to its own response by correlation id.
    pub fn call(&self, request: &Request) -> Result<Response, NetError> {
        let timing = sharoes_obs::in_span().then(Instant::now);
        let (id, sent) = self.send(request)?;
        let out = self.receive(request, id, sent);
        if let Some(start) = timing {
            sharoes_obs::phase_add(sharoes_obs::Phase::Net, start.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Issues every request before collecting any response, so a single
    /// thread still overlaps server work with the wire. Results return in
    /// request order.
    pub fn call_many(&self, requests: &[Request]) -> Vec<Result<Response, NetError>> {
        let sent: Vec<Result<(u64, u64), NetError>> =
            requests.iter().map(|r| self.send(r)).collect();
        requests
            .iter()
            .zip(sent)
            .map(|(req, s)| s.and_then(|(id, n)| self.receive(req, id, n)))
            .collect()
    }
}

impl Drop for PipelinedClient {
    fn drop(&mut self) {
        let _ = self.sock.shutdown(Shutdown::Both);
        self.dispatcher.fail_all("client dropped");
        let handle = self.reader.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// Reads response frames and routes each to its waiter by correlation id.
fn reader_loop<R: Read>(mut sock: R, dispatcher: Arc<CorrDispatcher>) {
    loop {
        let frame = match read_frame(&mut sock) {
            Ok(f) => f,
            Err(e) => {
                dispatcher.fail_all(&e.to_string());
                return;
            }
        };
        match split_corr(&frame) {
            Ok((Some(id), body)) => dispatcher.complete(id, Ok(body.to_vec())),
            // A pipelined connection only ever sends correlated requests;
            // a bare response means the stream desynchronized.
            Ok((None, _)) => {
                dispatcher.fail_all("uncorrelated response on pipelined connection");
                return;
            }
            Err(e) => {
                dispatcher.fail_all(&e.to_string());
                return;
            }
        }
    }
}

/// A [`Transport`] view over a shared [`PipelinedClient`], so trait-shaped
/// call sites (the resilient/cluster layers) can ride a multiplexed
/// connection. Clone-cheap: many transports, one socket.
pub struct PipelinedTransport {
    client: Arc<PipelinedClient>,
}

impl PipelinedTransport {
    /// A transport lane over `client`.
    pub fn new(client: Arc<PipelinedClient>) -> Self {
        PipelinedTransport { client }
    }
}

impl Transport for PipelinedTransport {
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        self.client.call(request)
    }

    fn meter(&self) -> &Arc<CostMeter> {
        self.client.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corr_header_roundtrip() {
        let body = attach_corr(0xDEAD_BEEF_0BAD_F00D, vec![1, 2, 3]);
        let (id, rest) = split_corr(&body).unwrap();
        assert_eq!(id, Some(0xDEAD_BEEF_0BAD_F00D));
        assert_eq!(rest, &[1, 2, 3]);
    }

    #[test]
    fn uncorrelated_frames_pass_through() {
        // A legacy response tag in byte 0 is not the corr magic.
        let (id, rest) = split_corr(&[0, 7, 7]).unwrap();
        assert_eq!(id, None);
        assert_eq!(rest, &[0, 7, 7]);
        // Empty frames are legal (some responses are tag-only… not really,
        // but the splitter must not panic).
        assert_eq!(split_corr(&[]).unwrap(), (None, &[][..]));
    }

    #[test]
    fn truncated_corr_header_is_typed_error() {
        let err = split_corr(&[CORR_MAGIC0, CORR_MAGIC1, 1, 2]).unwrap_err();
        assert!(matches!(err, NetError::Codec(_)), "got {err}");
    }

    #[test]
    fn dispatcher_routes_by_id() {
        let d = CorrDispatcher::new();
        let a = d.register().unwrap();
        let b = d.register().unwrap();
        assert_ne!(a, b);
        // Complete in reverse order; each waiter still gets its own bytes.
        d.complete(b, Ok(vec![2]));
        d.complete(a, Ok(vec![1]));
        assert_eq!(d.wait(a, Duration::from_secs(1)).unwrap(), vec![1]);
        assert_eq!(d.wait(b, Duration::from_secs(1)).unwrap(), vec![2]);
    }

    #[test]
    fn timeout_deregisters_and_late_reply_is_orphaned() {
        let d = CorrDispatcher::new();
        let id = d.register().unwrap();
        let err = d.wait(id, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err.class(), crate::ErrorClass::Retryable);
        // The late completion must not be deliverable to anyone.
        d.complete(id, Ok(vec![9]));
        assert!(d.wait(id, Duration::from_millis(10)).is_err());
    }

    #[test]
    fn fail_all_wakes_waiters_with_retryable_error() {
        let d = Arc::new(CorrDispatcher::new());
        let id = d.register().unwrap();
        let d2 = Arc::clone(&d);
        let waiter = std::thread::spawn(move || d2.wait(id, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        d.fail_all("socket torn");
        let err = waiter.join().unwrap().unwrap_err();
        assert_eq!(err.class(), crate::ErrorClass::Retryable);
        assert!(err.to_string().contains("socket torn"));
        // Dead dispatchers refuse new registrations.
        assert!(d.register().is_err());
    }
}
