//! # sharoes-net
//!
//! Wire protocol, transports, and the wide-area network cost model for the
//! Sharoes reproduction.
//!
//! * [`wire`] — hand-rolled, hostile-input-safe binary codec.
//! * [`message`] — the content-oblivious client↔SSP protocol ([`ObjectKey`],
//!   [`Request`], [`Response`]).
//! * [`transport`] — [`InMemoryTransport`] (deterministic, metered) and
//!   [`TcpTransport`] (real sockets), both speaking the identical byte
//!   format.
//! * [`cost`] / [`netmodel`] — the NETWORK/CRYPTO/OTHER accounting and the
//!   paper's DSL link model that converts byte counts to seconds.
//! * [`fault`] — deterministic, seed-replayable fault injection for chaos
//!   testing any transport.
//! * [`pipeline`] — correlation-id request pipelining: many in-flight
//!   requests multiplexed over one connection ([`PipelinedClient`]).
//! * [`resilient`] — retrying/reconnecting transport decorator built on the
//!   [`error::ErrorClass`] taxonomy.
//! * [`traceframe`] — the optional checksummed trace-context header
//!   prefixed to request frames, and the wire form of trace events.

#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod fault;
pub mod message;
pub mod netmodel;
pub mod pipeline;
pub mod resilient;
pub mod traceframe;
pub mod transport;
pub mod wire;

pub use cost::{CostMeter, CostSample};
pub use error::{ErrorClass, NetError, TRANSIENT_ERROR_PREFIX};
pub use fault::{FaultConfig, FaultCounts, FaultInjector, FaultKind, FaultSchedule, OpClass};
pub use message::{KeySpace, ObjectKey, Request, Response};
pub use netmodel::NetModel;
pub use pipeline::{
    attach_corr, corr_header, split_corr, CorrDispatcher, PipelinedClient, PipelinedTransport,
    CORR_HEADER_LEN,
};
pub use resilient::{
    Connector, FakeSleeper, ResilientTransport, RetryPolicy, Sleeper, WallClockSleeper,
};
pub use traceframe::{TraceEventWire, TRACE_HEADER_LEN, TRACE_HEADER_VERSION};
pub use transport::{
    write_frame_vectored, InMemoryTransport, RequestHandler, TcpTransport, Transport,
};
pub use wire::{Cursor, WireRead, WireWrite};
