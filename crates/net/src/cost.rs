//! Cost accounting: the NETWORK / CRYPTO / OTHER decomposition of Figure 13.
//!
//! Every client operation charges bytes and round trips to a [`CostMeter`];
//! crypto sections are timed with [`CostMeter::time_crypto`]. The benchmark
//! harness turns byte counts into seconds with a [`crate::netmodel::NetModel`]
//! so results are independent of the machine the reproduction runs on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached global-registry handles mirrored by every [`CostMeter`] charge
/// point. Meters are per-link/per-client; these are the process-wide
/// totals a running `sspd` exports over `Request::Metrics`.
struct WireMetrics {
    round_trips: sharoes_obs::Counter,
    tx_bytes: sharoes_obs::Counter,
    rx_bytes: sharoes_obs::Counter,
    frame_tx_bytes: sharoes_obs::Histogram,
    frame_rx_bytes: sharoes_obs::Histogram,
    retries: sharoes_obs::Counter,
    reconnects: sharoes_obs::Counter,
    faults: sharoes_obs::Counter,
    crypto_ns: sharoes_obs::Counter,
    other_ns: sharoes_obs::Counter,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| WireMetrics {
        round_trips: sharoes_obs::counter("net_round_trips_total"),
        tx_bytes: sharoes_obs::counter("net_tx_bytes_total"),
        rx_bytes: sharoes_obs::counter("net_rx_bytes_total"),
        frame_tx_bytes: sharoes_obs::histogram_bytes("net_frame_tx_bytes"),
        frame_rx_bytes: sharoes_obs::histogram_bytes("net_frame_rx_bytes"),
        retries: sharoes_obs::counter("net_retries_total"),
        reconnects: sharoes_obs::counter("net_reconnects_total"),
        faults: sharoes_obs::counter("net_faults_injected_total"),
        crypto_ns: sharoes_obs::counter("net_crypto_ns"),
        other_ns: sharoes_obs::counter("net_other_ns"),
    })
}

/// Shared, thread-safe accumulator of operation costs.
#[derive(Debug, Default)]
pub struct CostMeter {
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
    round_trips: AtomicU64,
    crypto_ns: AtomicU64,
    other_ns: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    faults_injected: AtomicU64,
}

/// A snapshot of accumulated costs, or the delta between two snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSample {
    /// Bytes sent client → SSP.
    pub bytes_up: u64,
    /// Bytes received SSP → client.
    pub bytes_down: u64,
    /// Request/response round trips.
    pub round_trips: u64,
    /// Nanoseconds spent in cryptographic operations.
    pub crypto_ns: u64,
    /// Nanoseconds spent in other local processing.
    pub other_ns: u64,
    /// Requests re-sent by the resilience layer after a retryable failure.
    pub retries: u64,
    /// Fresh connections established after a connection was torn down.
    pub reconnects: u64,
    /// Faults a fault-injecting transport deliberately introduced.
    pub faults_injected: u64,
}

impl CostSample {
    /// Component-wise difference (`self - earlier`); saturates at zero.
    pub fn since(&self, earlier: &CostSample) -> CostSample {
        CostSample {
            bytes_up: self.bytes_up.saturating_sub(earlier.bytes_up),
            bytes_down: self.bytes_down.saturating_sub(earlier.bytes_down),
            round_trips: self.round_trips.saturating_sub(earlier.round_trips),
            crypto_ns: self.crypto_ns.saturating_sub(earlier.crypto_ns),
            other_ns: self.other_ns.saturating_sub(earlier.other_ns),
            retries: self.retries.saturating_sub(earlier.retries),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &CostSample) -> CostSample {
        CostSample {
            bytes_up: self.bytes_up + other.bytes_up,
            bytes_down: self.bytes_down + other.bytes_down,
            round_trips: self.round_trips + other.round_trips,
            crypto_ns: self.crypto_ns + other.crypto_ns,
            other_ns: self.other_ns + other.other_ns,
            retries: self.retries + other.retries,
            reconnects: self.reconnects + other.reconnects,
            faults_injected: self.faults_injected + other.faults_injected,
        }
    }
}

impl CostMeter {
    /// A fresh meter wrapped for sharing.
    pub fn new_shared() -> Arc<CostMeter> {
        Arc::new(CostMeter::default())
    }

    /// Charges one round trip of `up` request bytes and `down` response bytes.
    pub fn charge_round_trip(&self, up: u64, down: u64) {
        self.bytes_up.fetch_add(up, Ordering::Relaxed);
        self.bytes_down.fetch_add(down, Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        let wire = wire_metrics();
        wire.round_trips.inc();
        wire.tx_bytes.add(up);
        wire.rx_bytes.add(down);
        wire.frame_tx_bytes.observe(up);
        wire.frame_rx_bytes.observe(down);
    }

    /// Counts one request retry.
    pub fn charge_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        wire_metrics().retries.inc();
    }

    /// Counts one reconnect.
    pub fn charge_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        wire_metrics().reconnects.inc();
    }

    /// Counts one deliberately injected fault.
    pub fn charge_fault(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        wire_metrics().faults.inc();
    }

    /// Adds already-measured crypto time.
    pub fn charge_crypto_ns(&self, ns: u64) {
        self.crypto_ns.fetch_add(ns, Ordering::Relaxed);
        wire_metrics().crypto_ns.add(ns);
    }

    /// Adds already-measured other-processing time.
    pub fn charge_other_ns(&self, ns: u64) {
        self.other_ns.fetch_add(ns, Ordering::Relaxed);
        wire_metrics().other_ns.add(ns);
    }

    /// Runs `f`, attributing its wall time to the CRYPTO component.
    pub fn time_crypto<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.charge_crypto_ns(start.elapsed().as_nanos() as u64);
        out
    }

    /// Runs `f`, attributing its wall time to the OTHER component.
    pub fn time_other<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.charge_other_ns(start.elapsed().as_nanos() as u64);
        out
    }

    /// Current totals.
    pub fn sample(&self) -> CostSample {
        CostSample {
            bytes_up: self.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.bytes_down.load(Ordering::Relaxed),
            round_trips: self.round_trips.load(Ordering::Relaxed),
            crypto_ns: self.crypto_ns.load(Ordering::Relaxed),
            other_ns: self.other_ns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.bytes_up.store(0, Ordering::Relaxed);
        self.bytes_down.store(0, Ordering::Relaxed);
        self.round_trips.store(0, Ordering::Relaxed);
        self.crypto_ns.store(0, Ordering::Relaxed);
        self.other_ns.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.reconnects.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let m = CostMeter::default();
        m.charge_round_trip(100, 200);
        m.charge_round_trip(1, 2);
        m.charge_crypto_ns(500);
        let s = m.sample();
        assert_eq!(s.bytes_up, 101);
        assert_eq!(s.bytes_down, 202);
        assert_eq!(s.round_trips, 2);
        assert_eq!(s.crypto_ns, 500);
    }

    #[test]
    fn delta_between_snapshots() {
        let m = CostMeter::default();
        m.charge_round_trip(10, 10);
        let before = m.sample();
        m.charge_round_trip(5, 7);
        let delta = m.sample().since(&before);
        assert_eq!(delta.bytes_up, 5);
        assert_eq!(delta.bytes_down, 7);
        assert_eq!(delta.round_trips, 1);
    }

    #[test]
    fn timers_attribute_components() {
        let m = CostMeter::default();
        m.time_crypto(std::thread::yield_now);
        m.time_other(std::thread::yield_now);
        let s = m.sample();
        // Both should be > 0 on any real clock; tolerate 0 only for crypto_ns
        // equality check stability by asserting the calls registered at all.
        assert!(s.crypto_ns > 0 || s.other_ns > 0 || cfg!(miri));
    }

    #[test]
    fn reset_clears() {
        let m = CostMeter::default();
        m.charge_round_trip(1, 1);
        m.reset();
        assert_eq!(m.sample(), CostSample::default());
    }

    #[test]
    fn plus_sums() {
        let a = CostSample {
            bytes_up: 1,
            bytes_down: 2,
            round_trips: 3,
            crypto_ns: 4,
            other_ns: 5,
            retries: 6,
            reconnects: 7,
            faults_injected: 8,
        };
        let b = a.plus(&a);
        assert_eq!(b.bytes_up, 2);
        assert_eq!(b.other_ns, 10);
        assert_eq!(b.retries, 12);
        assert_eq!(b.faults_injected, 16);
    }

    #[test]
    fn resilience_counters_accumulate_and_delta() {
        let m = CostMeter::default();
        m.charge_retry();
        m.charge_retry();
        m.charge_reconnect();
        m.charge_fault();
        let before = m.sample();
        assert_eq!(before.retries, 2);
        assert_eq!(before.reconnects, 1);
        assert_eq!(before.faults_injected, 1);
        m.charge_retry();
        let delta = m.sample().since(&before);
        assert_eq!(delta.retries, 1);
        assert_eq!(delta.reconnects, 0);
        m.reset();
        assert_eq!(m.sample(), CostSample::default());
    }

    #[test]
    fn shared_across_threads() {
        let m = CostMeter::new_shared();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.charge_round_trip(1, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.sample().round_trips, 8000);
    }
}
