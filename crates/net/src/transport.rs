//! Transports: how serialized requests reach the SSP.
//!
//! Two implementations with identical semantics:
//!
//! * [`InMemoryTransport`] — serializes through the full wire codec, charges
//!   a [`CostMeter`], and dispatches to an in-process handler. This is the
//!   deterministic path the benchmark harness uses (network time is modeled,
//!   not slept).
//! * [`TcpTransport`] — real sockets with length-prefixed frames, proving
//!   the same byte stream works over an actual network.

use crate::cost::CostMeter;
use crate::error::NetError;
use crate::message::{Request, Response};
use crate::traceframe;
use crate::wire::{WireRead, WireWrite};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on a single frame (64 MiB) to bound hostile allocations.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frame-read chunk size: memory is committed only as payload bytes
/// actually arrive, so a hostile length prefix alone cannot force a large
/// allocation.
const READ_CHUNK: usize = 64 << 10;

/// Something that can serve SSP requests in-process.
///
/// Implemented by the `sharoes-ssp` server; defined here so transports do
/// not depend on the server crate.
pub trait RequestHandler: Send + Sync {
    /// Handles one request.
    fn handle(&self, request: Request) -> Response;
}

/// A bidirectional request channel to the SSP.
pub trait Transport: Send {
    /// Sends a request and waits for the response.
    fn call(&mut self, request: &Request) -> Result<Response, NetError>;

    /// The meter recording this transport's traffic.
    fn meter(&self) -> &Arc<CostMeter>;
}

/// In-process transport with full serialization and cost metering.
pub struct InMemoryTransport {
    handler: Arc<dyn RequestHandler>,
    meter: Arc<CostMeter>,
}

impl InMemoryTransport {
    /// Creates a transport speaking to `handler`.
    pub fn new(handler: Arc<dyn RequestHandler>) -> Self {
        InMemoryTransport { handler, meter: CostMeter::new_shared() }
    }

    /// Creates a transport sharing an existing meter.
    pub fn with_meter(handler: Arc<dyn RequestHandler>, meter: Arc<CostMeter>) -> Self {
        InMemoryTransport { handler, meter }
    }
}

impl Transport for InMemoryTransport {
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        // Round-trip through the real codec so byte counts (and any codec
        // bugs) are identical to the TCP path — including the optional
        // trace header, which the "server side" below splits off and
        // adopts exactly like the TCP server does.
        let timing = sharoes_obs::in_span().then(Instant::now);
        let mut req_bytes = request.to_wire();
        if let Some(ctx) = sharoes_obs::mint_child("ssp.rpc") {
            req_bytes = traceframe::attach(&ctx, req_bytes);
        }
        let (remote_ctx, body) = traceframe::split_header(&req_bytes)?;
        let parsed = Request::from_wire(body)?;
        let response = {
            let _rpc = remote_ctx.map(|ctx| {
                sharoes_obs::SpanGuard::enter_with("ssp.rpc", ctx, || "transport=\"mem\"".into())
            });
            self.handler.handle(parsed)
        };
        let resp_bytes = response.to_wire();
        self.meter.charge_round_trip(req_bytes.len() as u64 + 4, resp_bytes.len() as u64 + 4);
        if let Some(start) = timing {
            sharoes_obs::phase_add(sharoes_obs::Phase::Net, start.elapsed().as_nanos() as u64);
        }
        Response::from_wire(&resp_bytes)
    }

    fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), NetError> {
    if body.len() > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge(body.len()));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Writes one length-prefixed frame whose body is the concatenation of
/// `parts`, without copying them into a contiguous buffer first.
///
/// The pipelined paths use this to prepend correlation/trace headers to an
/// already-serialized message: one vectored syscall instead of a
/// header+body memcpy per frame. Handles partial vectored writes by
/// resuming mid-part (`IoSlice::advance_slices` needs a newer Rust than
/// this workspace's MSRV).
pub fn write_frame_vectored<W: Write>(w: &mut W, parts: &[&[u8]]) -> Result<(), NetError> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge(total));
    }
    let prefix = (total as u32).to_be_bytes();
    let mut bufs: Vec<&[u8]> = Vec::with_capacity(parts.len() + 1);
    bufs.push(&prefix);
    bufs.extend(parts.iter().copied().filter(|p| !p.is_empty()));
    let mut idx = 0; // first buffer with unwritten bytes
    let mut off = 0; // bytes of bufs[idx] already written
    while idx < bufs.len() {
        let iov: Vec<std::io::IoSlice<'_>> =
            std::iter::once(std::io::IoSlice::new(&bufs[idx][off..]))
                .chain(bufs[idx + 1..].iter().map(|b| std::io::IoSlice::new(b)))
                .collect();
        let mut n = w.write_vectored(&iov)?;
        if n == 0 {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "vectored frame write stalled",
            )));
        }
        while idx < bufs.len() && n >= bufs[idx].len() - off {
            n -= bufs[idx].len() - off;
            off = 0;
            idx += 1;
        }
        off += n;
    }
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, NetError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge(len));
    }
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    while body.len() < len {
        let take = (len - body.len()).min(READ_CHUNK);
        let start = body.len();
        body.resize(start + take, 0);
        r.read_exact(&mut body[start..])?;
    }
    Ok(body)
}

/// TCP transport: one connection, sequential request/response frames.
pub struct TcpTransport {
    stream: TcpStream,
    meter: Arc<CostMeter>,
}

impl TcpTransport {
    /// Connects to an SSP server at `addr` (e.g. `"127.0.0.1:7070"`).
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::connect_with(addr, None, None, CostMeter::new_shared())
    }

    /// Connects with socket deadlines and a caller-supplied meter.
    ///
    /// Read/write timeouts bound how long one `call` can stall on a dead
    /// or wedged peer (a timed-out read surfaces as a retryable
    /// [`NetError::Io`]). Sharing a meter lets a reconnecting caller (the
    /// resilient transport) accumulate costs across connections.
    pub fn connect_with(
        addr: &str,
        read_timeout: Option<std::time::Duration>,
        write_timeout: Option<std::time::Duration>,
        meter: Arc<CostMeter>,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        stream.set_write_timeout(write_timeout)?;
        Ok(TcpTransport { stream, meter })
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let timing = sharoes_obs::in_span().then(Instant::now);
        let mut req_bytes = request.to_wire();
        if let Some(ctx) = sharoes_obs::mint_child("ssp.rpc") {
            req_bytes = traceframe::attach(&ctx, req_bytes);
        }
        write_frame(&mut self.stream, &req_bytes)?;
        let resp_bytes = read_frame(&mut self.stream)?;
        self.meter.charge_round_trip(req_bytes.len() as u64 + 4, resp_bytes.len() as u64 + 4);
        if let Some(start) = timing {
            sharoes_obs::phase_add(sharoes_obs::Phase::Net, start.elapsed().as_nanos() as u64);
        }
        Response::from_wire(&resp_bytes)
    }

    fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectKey;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Toy handler used by transport tests.
    struct EchoStore(Mutex<HashMap<ObjectKey, Vec<u8>>>);

    impl RequestHandler for EchoStore {
        fn handle(&self, request: Request) -> Response {
            match request {
                Request::Ping => Response::Pong,
                Request::Put { key, value } => {
                    self.0.lock().unwrap().insert(key, value);
                    Response::Ok
                }
                Request::Get { key } => Response::Object(self.0.lock().unwrap().get(&key).cloned()),
                _ => Response::Error("unsupported in test".into()),
            }
        }
    }

    #[test]
    fn in_memory_roundtrip_and_metering() {
        let handler = Arc::new(EchoStore(Mutex::new(HashMap::new())));
        let mut t = InMemoryTransport::new(handler);
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        let key = ObjectKey::metadata(1, [0; 16]);
        t.call(&Request::Put { key, value: vec![9; 100] }).unwrap();
        assert_eq!(t.call(&Request::Get { key }).unwrap(), Response::Object(Some(vec![9; 100])));
        let s = t.meter().sample();
        assert_eq!(s.round_trips, 3);
        assert!(s.bytes_up > 100, "upload should include the 100-byte payload");
        assert!(s.bytes_down > 100, "download should include the fetched object");
    }

    #[test]
    fn frames_roundtrip_over_buffers() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frame");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(read_frame(&mut cursor).is_err()); // EOF
    }

    #[test]
    fn vectored_frames_match_contiguous_frames() {
        let parts: [&[u8]; 3] = [b"head", b"", b"tail bytes"];
        let mut vectored = Vec::new();
        write_frame_vectored(&mut vectored, &parts).unwrap();
        let mut contiguous = Vec::new();
        write_frame(&mut contiguous, b"headtail bytes").unwrap();
        assert_eq!(vectored, contiguous);
    }

    /// A writer that accepts at most `cap` bytes per call, forcing the
    /// vectored path through its partial-write resume logic.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_writes_survive_partial_writes() {
        let body: Vec<u8> = (0..999u32).map(|i| (i % 251) as u8).collect();
        for cap in [1, 3, 7, 100] {
            let mut w = Dribble { out: Vec::new(), cap };
            write_frame_vectored(&mut w, &[&body[..100], &body[100..]]).unwrap();
            let mut cursor = std::io::Cursor::new(w.out);
            assert_eq!(read_frame(&mut cursor).unwrap(), body, "cap={cap}");
        }
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &vec![0u8; MAX_FRAME_LEN + 1]),
            Err(NetError::FrameTooLarge(_))
        ));
        let mut evil = Vec::new();
        evil.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cursor = std::io::Cursor::new(evil);
        assert!(matches!(read_frame(&mut cursor), Err(NetError::FrameTooLarge(_))));
    }

    /// A reader claiming a huge frame and then delivering ~0 payload bytes.
    /// Records the largest buffer a single `read` call was handed: chunked
    /// frame reads must never ask for (or allocate) the full claimed length
    /// up front.
    struct HugeClaimReader {
        prefix: Vec<u8>,
        sent: usize,
        max_read_buf: usize,
    }

    impl Read for HugeClaimReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.sent < self.prefix.len() {
                let n = buf.len().min(self.prefix.len() - self.sent);
                buf[..n].copy_from_slice(&self.prefix[self.sent..self.sent + n]);
                self.sent += n;
                return Ok(n);
            }
            self.max_read_buf = self.max_read_buf.max(buf.len());
            Ok(0) // EOF: the payload never arrives
        }
    }

    #[test]
    fn huge_length_prefix_does_not_preallocate() {
        // Claim a maximum-size frame, send no payload. The old code did
        // `vec![0u8; len]` (64 MiB) before reading a byte; the chunked
        // reader must fail at EOF having requested at most one chunk.
        let claimed = (MAX_FRAME_LEN as u32).to_be_bytes().to_vec();
        let mut r = HugeClaimReader { prefix: claimed, sent: 0, max_read_buf: 0 };
        assert!(matches!(read_frame(&mut r), Err(NetError::Io(_))));
        assert!(
            r.max_read_buf <= 64 << 10,
            "read buffer {} exceeds the 64 KiB chunk bound",
            r.max_read_buf
        );
    }

    #[test]
    fn chunked_reads_reassemble_large_frames() {
        // A frame spanning several chunks round-trips intact.
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), body);
    }

    #[test]
    fn tcp_transport_against_toy_server() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let store = EchoStore(Mutex::new(HashMap::new()));
            // Serve until the client hangs up.
            while let Ok(frame) = read_frame(&mut sock) {
                let req = Request::from_wire(&frame).unwrap();
                let resp = store.handle(req);
                write_frame(&mut sock, &resp.to_wire()).unwrap();
            }
        });

        let mut t = TcpTransport::connect(&addr.to_string()).unwrap();
        assert_eq!(t.call(&Request::Ping).unwrap(), Response::Pong);
        let key = ObjectKey::data(3, [1; 16], 0);
        t.call(&Request::Put { key, value: b"over tcp".to_vec() }).unwrap();
        assert_eq!(
            t.call(&Request::Get { key }).unwrap(),
            Response::Object(Some(b"over tcp".to_vec()))
        );
        assert_eq!(t.meter().sample().round_trips, 3);
        drop(t);
        server.join().unwrap();
    }
}
