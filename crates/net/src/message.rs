//! The client↔SSP request/response protocol.
//!
//! The SSP is a dumb, untrusted object store (paper §IV): "it simply
//! maintains a large hashtable for encrypted metadata objects and encrypted
//! data blocks, both indexed by the inode numbers and either hash of
//! user/group ID (for Scheme-1) or CAP ID (Scheme-2)". [`ObjectKey`] is that
//! index; the protocol is deliberately content-oblivious.

use crate::error::NetError;
use crate::wire::{Cursor, WireRead, WireWrite};

/// Which logical table at the SSP an object lives in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum KeySpace {
    /// Encrypted metadata objects.
    Metadata,
    /// Encrypted data blocks (file contents / directory tables).
    Data,
    /// Per-user encrypted superblocks (§III-C).
    Superblock,
    /// Group key blocks: group private keys encrypted per member (§II-A).
    GroupKey,
}

impl KeySpace {
    fn tag(self) -> u8 {
        match self {
            KeySpace::Metadata => 0,
            KeySpace::Data => 1,
            KeySpace::Superblock => 2,
            KeySpace::GroupKey => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, NetError> {
        Ok(match tag {
            0 => KeySpace::Metadata,
            1 => KeySpace::Data,
            2 => KeySpace::Superblock,
            3 => KeySpace::GroupKey,
            _ => return Err(NetError::Codec("unknown keyspace tag")),
        })
    }
}

/// A composite key the SSP indexes by, opaque to the SSP itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ObjectKey {
    /// Logical table.
    pub space: KeySpace,
    /// Inode number (0 where not applicable, e.g. superblocks).
    pub inode: u64,
    /// View selector: hash of user/group id (Scheme-1) or CAP id (Scheme-2).
    pub view: [u8; 16],
    /// Block index for multi-block file data; 0 otherwise.
    pub block: u32,
}

impl ObjectKey {
    /// Metadata object key.
    pub fn metadata(inode: u64, view: [u8; 16]) -> Self {
        ObjectKey { space: KeySpace::Metadata, inode, view, block: 0 }
    }

    /// Data block key.
    pub fn data(inode: u64, view: [u8; 16], block: u32) -> Self {
        ObjectKey { space: KeySpace::Data, inode, view, block }
    }

    /// Superblock key for a user-hash view.
    pub fn superblock(view: [u8; 16]) -> Self {
        ObjectKey { space: KeySpace::Superblock, inode: 0, view, block: 0 }
    }

    /// Group-key block for `(gid, member-hash)`.
    pub fn group_key(gid: u64, view: [u8; 16]) -> Self {
        ObjectKey { space: KeySpace::GroupKey, inode: gid, view, block: 0 }
    }
}

impl WireWrite for ObjectKey {
    fn write(&self, out: &mut Vec<u8>) {
        self.space.tag().write(out);
        self.inode.write(out);
        self.view.write(out);
        self.block.write(out);
    }
}

impl WireRead for ObjectKey {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        Ok(ObjectKey {
            space: KeySpace::from_tag(u8::read(r)?)?,
            inode: u64::read(r)?,
            view: <[u8; 16]>::read(r)?,
            block: u32::read(r)?,
        })
    }
}

/// A client request to the SSP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Stores (or replaces) one object.
    Put {
        /// Target key.
        key: ObjectKey,
        /// Encrypted object bytes.
        value: Vec<u8>,
    },
    /// Stores several objects in one round trip (mkdir/migration batching).
    PutMany {
        /// `(key, value)` pairs.
        items: Vec<(ObjectKey, Vec<u8>)>,
    },
    /// Fetches one object.
    Get {
        /// Source key.
        key: ObjectKey,
    },
    /// Fetches several objects in one round trip.
    GetMany {
        /// Keys to fetch; response preserves order.
        keys: Vec<ObjectKey>,
    },
    /// Deletes one object.
    Delete {
        /// Target key.
        key: ObjectKey,
    },
    /// Deletes every block of a data object (file truncation/removal).
    DeleteBlocks {
        /// Inode whose data blocks should go.
        inode: u64,
        /// View selector.
        view: [u8; 16],
    },
    /// Deletes several objects in one round trip (unlink/revocation).
    DeleteMany {
        /// Keys to delete.
        keys: Vec<ObjectKey>,
    },
    /// Storage accounting (bench E6 uses this).
    Stats,
    /// Live observability export: the serving process renders its global
    /// metrics registry (Prometheus text format). Content-oblivious like
    /// everything else — operational counters only, never stored data.
    Metrics,
    /// Pages through stored keys in `ObjectKey` order (cluster rebalancing
    /// and replica audits). Content stays opaque: only the index is listed,
    /// which the SSP already knows.
    Scan {
        /// Resume after this key (exclusive); `None` starts from the front.
        after: Option<ObjectKey>,
        /// Maximum keys per page.
        limit: u32,
    },
    /// Scrapes the serving process's trace ring (non-draining — local
    /// consumers keep their events). Like `Metrics`, operational telemetry
    /// only: span names and cost attribution, never stored data.
    Trace {
        /// Maximum events to return (the newest ones win).
        max: u32,
    },
    /// Fetches the root hash of the SSP's authenticated key index (the
    /// Merkle search tree over every stored `ObjectKey`). Clients pin this
    /// root; cluster audits compare it across replicas.
    Root,
    /// Fetches one node of the authenticated index by its hash, for
    /// subtree-diff descent during replica audits. The node encoding is
    /// owned by `sharoes-index`; the wire layer treats it as opaque bytes.
    IndexNode {
        /// Hash of the requested node.
        hash: [u8; 32],
    },
    /// Like `Scan`, but the reply carries the index root and a Merkle range
    /// proof that no key was omitted, inserted, or reordered between the
    /// cursor and the page end.
    ScanVerified {
        /// Resume after this key (exclusive); `None` starts from the front.
        after: Option<ObjectKey>,
        /// Maximum keys per page (at least 1; servers clamp 0 up to 1).
        limit: u32,
    },
}

impl Request {
    /// True when `response` is a plausible reply to this request.
    ///
    /// The protocol carries no sequence numbers, so after a timeout a late
    /// reply can desynchronize a connection by one frame. The resilient
    /// transport uses this shape check to detect such stale/duplicate
    /// replies and recover by reconnecting. (A stale reply of the *same*
    /// shape — an old `Object` for a different `Get` — is indistinguishable
    /// here by design; that is the rollback-detection problem the client's
    /// signed-version freshness ledger handles.)
    pub fn matches_response(&self, response: &Response) -> bool {
        match (self, response) {
            // Errors are a valid reply to anything.
            (_, Response::Error(_)) => true,
            (Request::Ping, Response::Pong) => true,
            (
                Request::Put { .. }
                | Request::PutMany { .. }
                | Request::Delete { .. }
                | Request::DeleteBlocks { .. }
                | Request::DeleteMany { .. },
                Response::Ok,
            ) => true,
            (Request::Get { .. }, Response::Object(_)) => true,
            (Request::GetMany { keys }, Response::Objects(vs)) => vs.len() == keys.len(),
            (Request::Stats, Response::Stats { .. }) => true,
            (Request::Metrics, Response::Metrics { .. }) => true,
            (Request::Scan { limit, .. }, Response::Keys { keys, .. }) => {
                keys.len() <= *limit as usize
            }
            // Trace checks the event cap, so an oversized stale reply is
            // detectable.
            (Request::Trace { max }, Response::Trace { events, .. }) => {
                events.len() <= *max as usize
            }
            (Request::Root, Response::Root { .. }) => true,
            (Request::IndexNode { .. }, Response::IndexNode { .. }) => true,
            // Verified scans enforce the page limit like plain scans (the
            // proof itself is checked by the client against its pinned root).
            (Request::ScanVerified { limit, .. }, Response::KeysProof { keys, .. }) => {
                keys.len() <= (*limit).max(1) as usize
            }
            _ => false,
        }
    }
}

/// An SSP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// Mutation acknowledged.
    Ok,
    /// One object (or `None` if absent).
    Object(Option<Vec<u8>>),
    /// Several objects, order matching the request.
    Objects(Vec<Option<Vec<u8>>>),
    /// Storage accounting.
    Stats {
        /// Number of stored objects.
        objects: u64,
        /// Total stored bytes.
        bytes: u64,
    },
    /// One page of a key scan.
    Keys {
        /// Keys in `ObjectKey` order, all strictly after the request's
        /// `after` cursor.
        keys: Vec<ObjectKey>,
        /// True when no keys remain beyond this page.
        done: bool,
    },
    /// Rendered metrics registry (Prometheus text exposition format).
    Metrics {
        /// The export text.
        text: String,
    },
    /// One bounded scrape of a trace ring.
    Trace {
        /// The newest buffered events, oldest first.
        events: Vec<crate::traceframe::TraceEventWire>,
        /// Events evicted from the ring before this scrape (plus any cut
        /// by the request's `max`), so assemblers know the view is partial.
        dropped: u64,
    },
    /// The root hash of the authenticated key index.
    Root {
        /// Root hash of the Merkle search tree over all stored keys.
        root: [u8; 32],
        /// Number of keys the index covers.
        count: u64,
    },
    /// One node of the authenticated index, or `None` if the hash is
    /// unknown (e.g. the tree mutated since the root was fetched).
    IndexNode {
        /// Opaque `sharoes-index` node encoding; its hash is its identity,
        /// so the fetcher verifies it by recomputing the digest.
        node: Option<Vec<u8>>,
    },
    /// One page of a verified key scan.
    KeysProof {
        /// Keys in `ObjectKey` order, all strictly after the request's
        /// `after` cursor.
        keys: Vec<ObjectKey>,
        /// True when no keys remain beyond this page.
        done: bool,
        /// Index root hash this page was proven against.
        root: [u8; 32],
        /// Opaque Merkle range proof (`sharoes-index` encoding) tying the
        /// page to `root`.
        proof: Vec<u8>,
    },
    /// Server-side failure.
    Error(String),
}

impl WireWrite for Request {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            Request::Ping => 0u8.write(out),
            Request::Put { key, value } => {
                1u8.write(out);
                key.write(out);
                value.write(out);
            }
            Request::PutMany { items } => {
                2u8.write(out);
                items.write(out);
            }
            Request::Get { key } => {
                3u8.write(out);
                key.write(out);
            }
            Request::GetMany { keys } => {
                4u8.write(out);
                keys.write(out);
            }
            Request::Delete { key } => {
                5u8.write(out);
                key.write(out);
            }
            Request::DeleteBlocks { inode, view } => {
                6u8.write(out);
                inode.write(out);
                view.write(out);
            }
            Request::DeleteMany { keys } => {
                8u8.write(out);
                keys.write(out);
            }
            Request::Stats => 7u8.write(out),
            Request::Scan { after, limit } => {
                9u8.write(out);
                after.write(out);
                limit.write(out);
            }
            Request::Metrics => 10u8.write(out),
            Request::Trace { max } => {
                11u8.write(out);
                max.write(out);
            }
            Request::Root => 12u8.write(out),
            Request::IndexNode { hash } => {
                13u8.write(out);
                hash.write(out);
            }
            Request::ScanVerified { after, limit } => {
                14u8.write(out);
                after.write(out);
                limit.write(out);
            }
        }
    }
}

impl WireRead for Request {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        Ok(match u8::read(r)? {
            0 => Request::Ping,
            1 => Request::Put { key: ObjectKey::read(r)?, value: Vec::<u8>::read(r)? },
            2 => Request::PutMany { items: Vec::read(r)? },
            3 => Request::Get { key: ObjectKey::read(r)? },
            4 => Request::GetMany { keys: Vec::read(r)? },
            5 => Request::Delete { key: ObjectKey::read(r)? },
            6 => Request::DeleteBlocks { inode: u64::read(r)?, view: <[u8; 16]>::read(r)? },
            7 => Request::Stats,
            8 => Request::DeleteMany { keys: Vec::read(r)? },
            9 => Request::Scan { after: Option::read(r)?, limit: u32::read(r)? },
            10 => Request::Metrics,
            11 => Request::Trace { max: u32::read(r)? },
            12 => Request::Root,
            13 => Request::IndexNode { hash: <[u8; 32]>::read(r)? },
            14 => Request::ScanVerified { after: Option::read(r)?, limit: u32::read(r)? },
            _ => return Err(NetError::Codec("unknown request tag")),
        })
    }
}

impl WireWrite for Response {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            Response::Pong => 0u8.write(out),
            Response::Ok => 1u8.write(out),
            Response::Object(v) => {
                2u8.write(out);
                v.write(out);
            }
            Response::Objects(vs) => {
                3u8.write(out);
                vs.write(out);
            }
            Response::Stats { objects, bytes } => {
                4u8.write(out);
                objects.write(out);
                bytes.write(out);
            }
            Response::Error(msg) => {
                5u8.write(out);
                msg.write(out);
            }
            Response::Keys { keys, done } => {
                6u8.write(out);
                keys.write(out);
                done.write(out);
            }
            Response::Metrics { text } => {
                7u8.write(out);
                text.write(out);
            }
            Response::Trace { events, dropped } => {
                8u8.write(out);
                events.write(out);
                dropped.write(out);
            }
            Response::Root { root, count } => {
                9u8.write(out);
                root.write(out);
                count.write(out);
            }
            Response::IndexNode { node } => {
                10u8.write(out);
                node.write(out);
            }
            Response::KeysProof { keys, done, root, proof } => {
                11u8.write(out);
                keys.write(out);
                done.write(out);
                root.write(out);
                proof.write(out);
            }
        }
    }
}

impl WireRead for Response {
    fn read(r: &mut Cursor<'_>) -> Result<Self, NetError> {
        Ok(match u8::read(r)? {
            0 => Response::Pong,
            1 => Response::Ok,
            2 => Response::Object(Option::read(r)?),
            3 => Response::Objects(Vec::read(r)?),
            4 => Response::Stats { objects: u64::read(r)?, bytes: u64::read(r)? },
            5 => Response::Error(String::read(r)?),
            6 => Response::Keys { keys: Vec::read(r)?, done: bool::read(r)? },
            7 => Response::Metrics { text: String::read(r)? },
            8 => Response::Trace { events: Vec::read(r)?, dropped: u64::read(r)? },
            9 => Response::Root { root: <[u8; 32]>::read(r)?, count: u64::read(r)? },
            10 => Response::IndexNode { node: Option::read(r)? },
            11 => Response::KeysProof {
                keys: Vec::read(r)?,
                done: bool::read(r)?,
                root: <[u8; 32]>::read(r)?,
                proof: Vec::read(r)?,
            },
            _ => return Err(NetError::Codec("unknown response tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::from_wire(&req.to_wire()).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::from_wire(&resp.to_wire()).unwrap(), resp);
    }

    #[test]
    fn all_requests_roundtrip() {
        let key = ObjectKey::metadata(42, [7u8; 16]);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Put { key, value: vec![1, 2, 3] });
        roundtrip_req(Request::PutMany {
            items: vec![(key, vec![1]), (ObjectKey::data(9, [0; 16], 3), vec![])],
        });
        roundtrip_req(Request::Get { key });
        roundtrip_req(Request::GetMany { keys: vec![key, ObjectKey::superblock([1; 16])] });
        roundtrip_req(Request::Delete { key });
        roundtrip_req(Request::DeleteBlocks { inode: 5, view: [9; 16] });
        roundtrip_req(Request::DeleteMany { keys: vec![key, ObjectKey::superblock([2; 16])] });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Scan { after: None, limit: 128 });
        roundtrip_req(Request::Scan { after: Some(key), limit: 0 });
        roundtrip_req(Request::Trace { max: 512 });
        roundtrip_req(Request::Root);
        roundtrip_req(Request::IndexNode { hash: [0xAB; 32] });
        roundtrip_req(Request::ScanVerified { after: None, limit: 64 });
        roundtrip_req(Request::ScanVerified { after: Some(key), limit: 1 });
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Object(None));
        roundtrip_resp(Response::Object(Some(vec![5, 6])));
        roundtrip_resp(Response::Objects(vec![None, Some(vec![])]));
        roundtrip_resp(Response::Stats { objects: 10, bytes: 12345 });
        roundtrip_resp(Response::Metrics { text: String::new() });
        roundtrip_resp(Response::Metrics { text: "a_total 1\nb_ns_count 2\n".into() });
        roundtrip_resp(Response::Error("boom".into()));
        roundtrip_resp(Response::Trace { events: vec![], dropped: 7 });
        roundtrip_resp(Response::Trace {
            events: vec![crate::traceframe::TraceEventWire {
                seq: 1,
                time_ns: 2,
                depth: 0,
                level: sharoes_obs::Level::Debug,
                kind: sharoes_obs::EventKind::Enter,
                trace_id: 9,
                span_id: 8,
                parent_id: 0,
                name: "core.read".into(),
                fields: String::new(),
                node: "a".into(),
            }],
            dropped: 0,
        });
        roundtrip_resp(Response::Keys { keys: vec![], done: true });
        roundtrip_resp(Response::Keys {
            keys: vec![ObjectKey::metadata(1, [4; 16]), ObjectKey::data(2, [5; 16], 7)],
            done: false,
        });
        roundtrip_resp(Response::Root { root: [0xCD; 32], count: 12345 });
        roundtrip_resp(Response::IndexNode { node: None });
        roundtrip_resp(Response::IndexNode { node: Some(vec![1, 2, 3]) });
        roundtrip_resp(Response::KeysProof {
            keys: vec![ObjectKey::metadata(1, [4; 16])],
            done: false,
            root: [0xEF; 32],
            proof: vec![9, 8, 7],
        });
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::from_wire(&[99]).is_err());
        assert!(Response::from_wire(&[99]).is_err());
    }

    #[test]
    fn response_shape_matching() {
        let key = ObjectKey::metadata(1, [0; 16]);
        assert!(Request::Ping.matches_response(&Response::Pong));
        assert!(!Request::Ping.matches_response(&Response::Ok));
        assert!(Request::Put { key, value: vec![] }.matches_response(&Response::Ok));
        assert!(!Request::Put { key, value: vec![] }.matches_response(&Response::Pong));
        assert!(Request::Get { key }.matches_response(&Response::Object(None)));
        assert!(!Request::Get { key }.matches_response(&Response::Objects(vec![])));
        // GetMany checks arity, so a stale shorter reply is detectable.
        let two = Request::GetMany { keys: vec![key, key] };
        assert!(two.matches_response(&Response::Objects(vec![None, None])));
        assert!(!two.matches_response(&Response::Objects(vec![None])));
        // Errors match anything.
        assert!(two.matches_response(&Response::Error("x".into())));
        // Scan checks the page limit, so an oversized stale reply is detectable.
        let scan = Request::Scan { after: None, limit: 1 };
        assert!(scan.matches_response(&Response::Keys { keys: vec![key], done: true }));
        assert!(!scan.matches_response(&Response::Keys { keys: vec![key, key], done: false }));
        assert!(!scan.matches_response(&Response::Ok));
        // Metrics pairs only with a Metrics reply (or an error).
        assert!(Request::Metrics.matches_response(&Response::Metrics { text: "x".into() }));
        assert!(!Request::Metrics.matches_response(&Response::Stats { objects: 0, bytes: 0 }));
        assert!(!Request::Stats.matches_response(&Response::Metrics { text: "x".into() }));
        // Trace checks the event cap.
        assert!(Request::Trace { max: 0 }
            .matches_response(&Response::Trace { events: vec![], dropped: 0 }));
        assert!(!Request::Trace { max: 0 }.matches_response(&Response::Metrics { text: "".into() }));
        // Index ops pair only with their own replies; verified scans check
        // the page limit like plain scans.
        assert!(Request::Root.matches_response(&Response::Root { root: [0; 32], count: 0 }));
        assert!(!Request::Root.matches_response(&Response::Stats { objects: 0, bytes: 0 }));
        assert!(Request::IndexNode { hash: [0; 32] }
            .matches_response(&Response::IndexNode { node: None }));
        assert!(!Request::IndexNode { hash: [0; 32] }.matches_response(&Response::Ok));
        let vscan = Request::ScanVerified { after: None, limit: 1 };
        let page = |keys| Response::KeysProof { keys, done: true, root: [0; 32], proof: vec![] };
        assert!(vscan.matches_response(&page(vec![key])));
        assert!(!vscan.matches_response(&page(vec![key, key])));
        assert!(!vscan.matches_response(&Response::Keys { keys: vec![], done: true }));
    }

    #[test]
    fn key_constructors() {
        let k = ObjectKey::group_key(7, [1; 16]);
        assert_eq!(k.space, KeySpace::GroupKey);
        assert_eq!(k.inode, 7);
        let k = ObjectKey::data(3, [2; 16], 9);
        assert_eq!(k.block, 9);
        let k = ObjectKey::superblock([3; 16]);
        assert_eq!(k.inode, 0);
    }
}
