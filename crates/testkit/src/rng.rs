//! Seeded randomness facade for tests and benches.
//!
//! All test entropy flows through the HMAC-DRBG (NIST SP 800-90A over
//! SHA-256) from `sharoes-crypto`, so a run is a pure function of the seed.
//! The default seed is a fixed constant; set `SHAROES_TEST_SEED` (decimal or
//! `0x`-prefixed hex) to explore a different universe of generated inputs.

pub use sharoes_crypto::{HmacDrbg, RandomSource};

/// The fixed default seed for deterministic runs.
pub const DEFAULT_SEED: u64 = 0x5AA0_E55E_EDED_0001;

/// The seed in force: `SHAROES_TEST_SEED` if set and parseable, otherwise
/// [`DEFAULT_SEED`].
pub fn test_seed() -> u64 {
    match std::env::var("SHAROES_TEST_SEED") {
        Ok(s) => parse_seed(&s)
            .unwrap_or_else(|| panic!("SHAROES_TEST_SEED={s:?} is not a decimal or 0x-hex u64")),
        Err(_) => DEFAULT_SEED,
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A fresh DRBG seeded from [`test_seed`].
pub fn test_rng() -> HmacDrbg {
    HmacDrbg::from_seed_u64(test_seed())
}

/// A fresh DRBG derived from the test seed and a label, so independent
/// fixtures draw from independent (but reproducible) streams.
pub fn test_rng_for(label: &str) -> HmacDrbg {
    let mut seed = Vec::with_capacity(8 + label.len());
    seed.extend_from_slice(&test_seed().to_be_bytes());
    seed.extend_from_slice(label.as_bytes());
    HmacDrbg::new(&seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed(" 0X10 "), Some(16));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn labeled_rngs_differ_but_reproduce() {
        let mut a1 = test_rng_for("a");
        let mut a2 = test_rng_for("a");
        let mut b = test_rng_for("b");
        assert_eq!(a1.next_u64(), a2.next_u64());
        let mut a = test_rng_for("a");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
