//! Wall-clock micro-benchmark harness for `harness = false` bench targets.
//!
//! The shape mirrors the common group/function bench API: a
//! [`BenchRunner`] owns CLI filtering, a [`BenchGroup`] namespaces related
//! functions and can attach a throughput denominator, and a [`Bencher`]
//! measures the closure handed to it. Each measurement warms up, sizes the
//! per-sample iteration count to a target sample duration, collects N
//! samples, and reports min/median/p95 per-iteration times (plus MiB/s when
//! a throughput is set).
//!
//! Environment knobs: `SHAROES_BENCH_SAMPLES` (default 25) and
//! `SHAROES_BENCH_SAMPLE_MS` (default 5) trade precision for speed.

use std::hint::black_box;
use std::time::Instant;

/// Top-level bench harness state: name filter plus report sink.
pub struct BenchRunner {
    filter: Option<String>,
    samples: usize,
    sample_nanos: f64,
    ran: usize,
}

impl BenchRunner {
    /// Builds a runner from `std::env::args`, skipping cargo's `--bench`
    /// flag; the first free argument is a substring filter.
    pub fn from_args(title: &str) -> BenchRunner {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let samples = env_usize("SHAROES_BENCH_SAMPLES", 25).max(2);
        let sample_ms = env_usize("SHAROES_BENCH_SAMPLE_MS", 5).max(1);
        println!("== {title} ==");
        BenchRunner { filter, samples, sample_nanos: sample_ms as f64 * 1e6, ran: 0 }
    }

    /// Opens a named group of related benchmarks.
    pub fn group(&mut self, name: &str) -> BenchGroup<'_> {
        BenchGroup { runner: self, name: name.to_string(), throughput: None }
    }

    /// Benches a single ungrouped function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.run_one(name, None, f);
    }

    fn run_one(
        &mut self,
        full_name: &str,
        throughput: Option<u64>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: self.samples,
            sample_nanos: self.sample_nanos,
            per_iter_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        self.ran += 1;
        report(full_name, throughput, &mut bencher);
    }

    /// Prints the summary footer; call last.
    pub fn finish(self) {
        println!("-- {} benchmark(s) run --", self.ran);
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// A named collection of benchmarks sharing an optional throughput.
pub struct BenchGroup<'a> {
    runner: &'a mut BenchRunner,
    name: String,
    throughput: Option<u64>,
}

impl BenchGroup<'_> {
    /// Sets the bytes-processed-per-iteration denominator for subsequent
    /// functions in this group.
    pub fn throughput(&mut self, bytes: u64) {
        self.throughput = Some(bytes);
    }

    /// Benches `f` under `group/name`.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.as_ref());
        let throughput = self.throughput;
        self.runner.run_one(&full, throughput, f);
    }

    /// Ends the group (drop also suffices; kept for call-site symmetry).
    pub fn finish(self) {}
}

/// Measures one closure. Handed to the function under
/// [`BenchGroup::bench_function`]; call [`Bencher::iter`] or
/// [`Bencher::iter_batched`] exactly once.
pub struct Bencher {
    samples: usize,
    sample_nanos: f64,
    per_iter_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, which is run back-to-back many times per sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Estimate a single-iteration cost to size the sample batches.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().as_nanos().max(1) as f64;
        let iters = (self.sample_nanos / estimate).clamp(1.0, 1e7) as u64;
        self.iters_per_sample = iters;
        // One untimed warmup batch stabilizes caches and branch predictors.
        for _ in 0..iters.min(1024) {
            black_box(f());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over per-iteration states built by the untimed
    /// `setup` (for operations that consume or mutate their input).
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        // Setup may dwarf the routine, so batches stay small and each
        // routine invocation is timed individually.
        let iters = 4u64;
        self.iters_per_sample = iters;
        black_box(routine(setup())); // warmup
        for _ in 0..self.samples {
            let mut elapsed = 0f64;
            for _ in 0..iters {
                let state = setup();
                let start = Instant::now();
                black_box(routine(state));
                elapsed += start.elapsed().as_nanos() as f64;
            }
            self.per_iter_ns.push(elapsed / iters as f64);
        }
    }
}

fn report(name: &str, throughput: Option<u64>, bencher: &mut Bencher) {
    let xs = &mut bencher.per_iter_ns;
    assert!(!xs.is_empty(), "bench {name}: closure never called iter()/iter_batched()");
    xs.sort_by(|a, b| a.total_cmp(b));
    let min = xs[0];
    let median = xs[xs.len() / 2];
    let p95 = xs[(xs.len() as f64 * 0.95) as usize % xs.len()];
    let mut line = format!(
        "{name:<44} min {:>9}  med {:>9}  p95 {:>9}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(p95)
    );
    if let Some(bytes) = throughput {
        let mibs = bytes as f64 / (median * 1e-9) / (1024.0 * 1024.0);
        line.push_str(&format!("  {mibs:>9.1} MiB/s"));
    }
    line.push_str(&format!("  ({} samples x {} iters)", bencher.samples, bencher.iters_per_sample));
    println!("{line}");
}

/// Renders nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.0ns");
        assert_eq!(fmt_ns(1_500.0), "1.50us");
        assert_eq!(fmt_ns(2_000_000.0), "2.00ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000s");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b =
            Bencher { samples: 3, sample_nanos: 1e5, per_iter_ns: Vec::new(), iters_per_sample: 0 };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.per_iter_ns.len(), 3);
        assert!(b.per_iter_ns.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b =
            Bencher { samples: 2, sample_nanos: 1e5, per_iter_ns: Vec::new(), iters_per_sample: 0 };
        b.iter_batched(|| vec![1u8; 64], |v| v.len());
        assert_eq!(b.per_iter_ns.len(), 2);
    }
}
