//! Deterministic enterprise-scale scenario generation.
//!
//! The paper evaluates Sharoes with paper-scale workloads (Create-and-List,
//! Andrew, PostMark); enterprise dynamics — revocation storms, group churn,
//! Scheme-1 vs Scheme-2 crossover — need populations with realistic *shape*:
//! a few enormous groups and many tiny ones, a few prolific sharers and a
//! long tail of private files. This module generates that shape from the
//! testkit DRBG so every run replays byte-identically from
//! `SHAROES_TEST_SEED`, and at the million-entity scale the generated graph
//! can be fingerprinted without ever materializing a filesystem.
//!
//! Layers:
//!
//! * [`Zipf`] — an integer cumulative-weight Zipf sampler (binary search,
//!   no float math at sample time).
//! * [`EnterpriseSpec`] / [`Scale`] — population sizes, env-tunable via
//!   `SHAROES_SCALE` (`small` | `medium` | `large` | `million`).
//! * [`Enterprise`] — the generated population: group membership, file
//!   sharing graph, and a mixed read/write/chmod traffic stream. Small
//!   scales [`materialize`](Enterprise::materialize) into a [`LocalFs`]
//!   for end-to-end drivers; every scale supports
//!   [`fingerprint`](Enterprise::fingerprint) and [`GraphStats`].

use sharoes_crypto::{Digest, HmacDrbg, RandomSource, Sha256};
use sharoes_fs::{Acl, Gid, LocalFs, Mode, Perm, Uid, UserDb, ROOT_UID};

/// First generated uid; user index `i` is `Uid(BASE_UID + i)`.
pub const BASE_UID: u32 = 1000;
/// First generated gid; group index `j` is `Gid(BASE_GID + j)`.
pub const BASE_GID: u32 = 200;

/// Uniform draw in `[0, bound)` from a [`RandomSource`].
fn below<R: RandomSource + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    // Modulo bias is irrelevant here: bounds are tiny relative to 2^64 and
    // the draw only shapes synthetic populations.
    rng.next_u64() % bound
}

/// Bernoulli draw with probability `percent / 100`.
fn percent<R: RandomSource + ?Sized>(rng: &mut R, p: u64) -> bool {
    below(rng, 100) < p
}

/// A Zipf(s) sampler over ranks `0..n` using an integer cumulative-weight
/// table: rank `r` gets weight `⌊10⁹ / (r+1)^s⌋` (clamped to ≥ 1), samples
/// binary-search the table. Float math happens once at construction; the
/// sample path is pure integer, so replay is byte-exact.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<u64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (1.0 = classic Zipf).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0u64;
        for rank in 1..=n {
            let w = (1.0e9 / (rank as f64).powf(s)).max(1.0) as u64;
            total += w;
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the domain is empty (never: construction asserts `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample<R: RandomSource + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let roll = below(rng, total);
        self.cumulative.partition_point(|&c| c <= roll)
    }
}

/// Named population sizes, selectable at runtime via `SHAROES_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// CI default: seconds end-to-end including crypto.
    Small,
    /// Heavier local run.
    Medium,
    /// Graph-level stress (materialization feasible, crypto drivers slow).
    Large,
    /// ≥ 10⁶ generated entities (users + groups + files + traffic ops).
    /// Graph generation and fingerprinting only — materializing would mean
    /// hundreds of thousands of RSA keygens.
    Million,
}

impl Scale {
    /// Reads `SHAROES_SCALE` (default [`Scale::Small`]). Panics on an
    /// unknown value so CI can't silently run the wrong size.
    pub fn from_env() -> Scale {
        match std::env::var("SHAROES_SCALE") {
            Err(_) => Scale::Small,
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "small" => Scale::Small,
                "medium" => Scale::Medium,
                "large" => Scale::Large,
                "million" => Scale::Million,
                other => {
                    panic!("SHAROES_SCALE={other:?} — expected small | medium | large | million")
                }
            },
        }
    }

    /// The population sizes for this scale, seeded with `seed`.
    pub fn spec(self, seed: u64) -> EnterpriseSpec {
        let (users, groups, files, ops) = match self {
            Scale::Small => (8, 4, 24, 96),
            Scale::Medium => (64, 12, 256, 1024),
            Scale::Large => (4_096, 256, 16_384, 32_768),
            Scale::Million => (400_000, 20_000, 500_000, 100_000),
        };
        EnterpriseSpec { users, groups, files, ops, zipf_s: 1.0, seed }
    }
}

/// Population sizes and distribution shape for one generated enterprise.
#[derive(Clone, Debug)]
pub struct EnterpriseSpec {
    /// Number of users (`Uid(1000)..`).
    pub users: usize,
    /// Number of groups (`Gid(200)..`).
    pub groups: usize,
    /// Number of files.
    pub files: usize,
    /// Length of the mixed traffic stream.
    pub ops: usize,
    /// Zipf exponent shared by the group-popularity, file-ownership, and
    /// file-heat distributions.
    pub zipf_s: f64,
    /// DRBG seed; equal specs generate byte-identical enterprises.
    pub seed: u64,
}

impl EnterpriseSpec {
    /// Total generated entities (users + groups + files + traffic ops) —
    /// the "million" in million-entity scale.
    pub fn entities(&self) -> usize {
        self.users + self.groups + self.files + self.ops
    }
}

/// One generated file: owner, mode, named-user read grants, and content
/// parameters (content is derived from `salt`, never stored).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileSpec {
    /// Global file id (position in [`Enterprise::files`]).
    pub id: u32,
    /// Owner user index.
    pub owner: u32,
    /// Final mode bits (octal).
    pub mode_octal: u32,
    /// User indices granted read via a named-user ACL entry (the Scheme-2
    /// split-point driver).
    pub acl_readers: Vec<u32>,
    /// Content length in bytes.
    pub len: u32,
    /// Content salt; see [`FileSpec::content`].
    pub salt: u64,
}

impl FileSpec {
    /// Path of this file under its owner's home.
    pub fn path(&self) -> String {
        format!("/home/u{}/f{}.dat", self.owner, self.id)
    }

    /// The file's deterministic content.
    pub fn content(&self) -> Vec<u8> {
        content_bytes(self.len as usize, self.salt)
    }
}

/// Deterministic filler bytes for a `(len, salt)` pair.
pub fn content_bytes(len: usize, salt: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(salt);
            (x ^ (x >> 29)) as u8
        })
        .collect()
}

/// One step of the mixed traffic stream. Actors and files are indices into
/// the generated population; drivers translate them to uids/paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrafficOp {
    /// `actor` opens and reads `file`.
    Read {
        /// Acting user index.
        actor: u32,
        /// Target file id.
        file: u32,
    },
    /// `actor` rewrites `file` with fresh salted content.
    Write {
        /// Acting user index.
        actor: u32,
        /// Target file id.
        file: u32,
        /// Salt for the replacement content.
        salt: u64,
    },
    /// The owner flips `file` to `octal` (the revocation/grant driver).
    Chmod {
        /// Target file id.
        file: u32,
        /// New mode bits.
        octal: u32,
    },
}

/// Shape summary of a generated enterprise, cheap at any scale.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Members of the largest group (primary + secondary).
    pub max_group_size: usize,
    /// Total membership edges (every user has 1 primary + n secondary).
    pub membership_edges: usize,
    /// Files owned by the most prolific owner.
    pub max_files_per_owner: usize,
    /// Files carrying at least one named-user ACL grant.
    pub shared_files: usize,
    /// Total named-user ACL entries.
    pub acl_entries: usize,
}

/// A generated enterprise population: membership graph, sharing graph, and
/// traffic stream. Pure data — no keys, no filesystem — until
/// [`materialize`](Enterprise::materialize).
#[derive(Clone, Debug)]
pub struct Enterprise {
    /// The spec this population was generated from.
    pub spec: EnterpriseSpec,
    /// Primary group index per user.
    pub primary_group: Vec<u32>,
    /// Secondary group indices per user (sorted, deduped, excludes
    /// primary).
    pub extra_groups: Vec<Vec<u32>>,
    /// The sharing graph.
    pub files: Vec<FileSpec>,
    /// The traffic stream.
    pub ops: Vec<TrafficOp>,
    /// Shape summary.
    pub stats: GraphStats,
}

/// Weighted final file modes: mostly group-readable, a private tail, a
/// world-readable head. All representable under every crypto policy.
const FILE_MODES: [(u32, u64); 4] = [(0o600, 30), (0o640, 30), (0o644, 25), (0o660, 15)];

fn pick_mode<R: RandomSource + ?Sized>(rng: &mut R) -> u32 {
    let total: u64 = FILE_MODES.iter().map(|&(_, w)| w).sum();
    let mut roll = below(rng, total);
    for &(mode, w) in &FILE_MODES {
        if roll < w {
            return mode;
        }
        roll -= w;
    }
    FILE_MODES[FILE_MODES.len() - 1].0
}

impl Enterprise {
    /// Generates the population for `spec`. Deterministic: the DRBG is
    /// derived from `spec.seed` alone.
    pub fn generate(spec: &EnterpriseSpec) -> Enterprise {
        assert!(spec.users > 0 && spec.groups > 0 && spec.files > 0);
        let mut rng =
            HmacDrbg::new(&[&spec.seed.to_be_bytes()[..], b"sharoes:enterprise"].concat());
        let group_pop = Zipf::new(spec.groups, spec.zipf_s);
        let user_pop = Zipf::new(spec.users, spec.zipf_s);

        // Membership: Zipf primary group plus a geometric-ish tail of
        // secondary memberships (most users: none; a few: up to 3).
        let mut group_sizes = vec![0usize; spec.groups];
        let mut primary_group = Vec::with_capacity(spec.users);
        let mut extra_groups = Vec::with_capacity(spec.users);
        let mut membership_edges = 0usize;
        for _ in 0..spec.users {
            let primary = group_pop.sample(&mut rng) as u32;
            group_sizes[primary as usize] += 1;
            membership_edges += 1;
            let mut extras: Vec<u32> = Vec::new();
            while extras.len() < 3 && percent(&mut rng, 25) {
                let g = group_pop.sample(&mut rng) as u32;
                if g != primary && !extras.contains(&g) {
                    group_sizes[g as usize] += 1;
                    membership_edges += 1;
                    extras.push(g);
                }
            }
            extras.sort_unstable();
            primary_group.push(primary);
            extra_groups.push(extras);
        }

        // Sharing graph: Zipf owners, weighted modes, occasional
        // named-user read grants to Zipf-popular users.
        let mut files = Vec::with_capacity(spec.files);
        let mut files_per_owner = vec![0usize; spec.users];
        let mut shared_files = 0usize;
        let mut acl_entries = 0usize;
        for id in 0..spec.files {
            let owner = user_pop.sample(&mut rng) as u32;
            files_per_owner[owner as usize] += 1;
            let mode_octal = pick_mode(&mut rng);
            let mut acl_readers: Vec<u32> = Vec::new();
            if percent(&mut rng, 20) {
                let n = 1 + below(&mut rng, 3) as usize;
                while acl_readers.len() < n {
                    let r = user_pop.sample(&mut rng) as u32;
                    if r != owner && !acl_readers.contains(&r) {
                        acl_readers.push(r);
                    } else if spec.users <= n {
                        break; // tiny populations can't fill the quota
                    }
                }
                acl_readers.sort_unstable();
                if !acl_readers.is_empty() {
                    shared_files += 1;
                    acl_entries += acl_readers.len();
                }
            }
            files.push(FileSpec {
                id: id as u32,
                owner,
                mode_octal,
                acl_readers,
                len: 64 + below(&mut rng, 449) as u32, // 64..=512 bytes
                salt: rng.next_u64(),
            });
        }

        // Traffic: Zipf-hot files; reads dominate, then rewrites, then
        // permission flips. Actors are mostly legitimate readers (owner or
        // an ACL grantee), with a dissident tail exercising denials.
        let file_heat = Zipf::new(spec.files, spec.zipf_s);
        let mut ops = Vec::with_capacity(spec.ops);
        for _ in 0..spec.ops {
            let file = &files[file_heat.sample(&mut rng)];
            let actor = if !file.acl_readers.is_empty() && percent(&mut rng, 40) {
                file.acl_readers[below(&mut rng, file.acl_readers.len() as u64) as usize]
            } else if percent(&mut rng, 25) {
                below(&mut rng, spec.users as u64) as u32
            } else {
                file.owner
            };
            ops.push(match below(&mut rng, 100) {
                0..=59 => TrafficOp::Read { actor, file: file.id },
                60..=84 => {
                    TrafficOp::Write { actor: file.owner, file: file.id, salt: rng.next_u64() }
                }
                _ => TrafficOp::Chmod { file: file.id, octal: pick_mode(&mut rng) },
            });
        }

        let stats = GraphStats {
            max_group_size: group_sizes.iter().copied().max().unwrap_or(0),
            membership_edges,
            max_files_per_owner: files_per_owner.iter().copied().max().unwrap_or(0),
            shared_files,
            acl_entries,
        };
        Enterprise { spec: spec.clone(), primary_group, extra_groups, files, ops, stats }
    }

    /// Uid of user index `i`.
    pub fn uid(i: u32) -> Uid {
        Uid(BASE_UID + i)
    }

    /// Gid of group index `j`.
    pub fn gid(j: u32) -> Gid {
        Gid(BASE_GID + j)
    }

    /// A 128-bit hex fingerprint of the full generated structure
    /// (membership, sharing graph, traffic stream). Two runs at the same
    /// seed must agree byte-for-byte — this is the replay oracle that works
    /// at every scale, including [`Scale::Million`] where materialization
    /// is off the table.
    pub fn fingerprint(&self) -> String {
        let mut h = Sha256::new();
        for (i, &g) in self.primary_group.iter().enumerate() {
            h.update(&(i as u32).to_be_bytes());
            h.update(&g.to_be_bytes());
            for &e in &self.extra_groups[i] {
                h.update(&e.to_be_bytes());
            }
        }
        for f in &self.files {
            h.update(&f.id.to_be_bytes());
            h.update(&f.owner.to_be_bytes());
            h.update(&f.mode_octal.to_be_bytes());
            for &r in &f.acl_readers {
                h.update(&r.to_be_bytes());
            }
            h.update(&f.len.to_be_bytes());
            h.update(&f.salt.to_be_bytes());
        }
        for op in &self.ops {
            match op {
                TrafficOp::Read { actor, file } => {
                    h.update(b"r");
                    h.update(&actor.to_be_bytes());
                    h.update(&file.to_be_bytes());
                }
                TrafficOp::Write { actor, file, salt } => {
                    h.update(b"w");
                    h.update(&actor.to_be_bytes());
                    h.update(&file.to_be_bytes());
                    h.update(&salt.to_be_bytes());
                }
                TrafficOp::Chmod { file, octal } => {
                    h.update(b"c");
                    h.update(&file.to_be_bytes());
                    h.update(&octal.to_be_bytes());
                }
            }
        }
        let digest = h.finalize_vec();
        digest[..16].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Builds the [`UserDb`] for this population (root + wheel, groups,
    /// users with primary and secondary memberships).
    pub fn user_db(&self) -> UserDb {
        let mut db = UserDb::new();
        db.add_group(Gid(0), "wheel").expect("fresh db");
        for j in 0..self.spec.groups {
            db.add_group(Self::gid(j as u32), &format!("g{j}")).expect("unique gid");
        }
        db.add_user(ROOT_UID, "root", Gid(0)).expect("fresh db");
        for (i, &primary) in self.primary_group.iter().enumerate() {
            let uid = Self::uid(i as u32);
            db.add_user(uid, &format!("u{i}"), Self::gid(primary)).expect("unique uid");
            for &extra in &self.extra_groups[i] {
                db.add_member(Self::gid(extra), uid).expect("user exists");
            }
        }
        db
    }

    /// Materializes the population into a [`LocalFs`]: homes under
    /// `/home/u{i}` (world-traversable; privacy lives in file modes and
    /// ACLs), each file created by its owner with salted content, ACL
    /// grants, and its final mode. Feasible up to [`Scale::Large`]; the
    /// million scale stays graph-only.
    pub fn materialize(&self) -> LocalFs {
        let mut fs = LocalFs::new(self.user_db(), Gid(0), Mode::from_octal(0o755));
        fs.mkdir(ROOT_UID, "/home", Mode::from_octal(0o755)).expect("mkdir /home");
        let mut has_home = vec![false; self.spec.users];
        for f in &self.files {
            has_home[f.owner as usize] = true;
        }
        for (i, &primary) in self.primary_group.iter().enumerate() {
            if !has_home[i] {
                continue; // skip homes nothing references: keeps Large lean
            }
            let uid = Self::uid(i as u32);
            let home = format!("/home/u{i}");
            fs.mkdir(ROOT_UID, &home, Mode::from_octal(0o755)).expect("mkdir home");
            fs.chown(ROOT_UID, &home, uid, Self::gid(primary)).expect("chown home");
        }
        for f in &self.files {
            let uid = Self::uid(f.owner);
            let path = f.path();
            fs.create(uid, &path, Mode::from_octal(0o600)).expect("create file");
            fs.write(uid, &path, &f.content()).expect("write file");
            if !f.acl_readers.is_empty() {
                let mut acl = Acl::empty();
                for &r in &f.acl_readers {
                    acl.set_user(Self::uid(r), Perm::R);
                }
                fs.set_acl(uid, &path, acl).expect("set acl");
            }
            fs.chmod(uid, &path, Mode::from_octal(f.mode_octal)).expect("chmod file");
        }
        fs
    }

    /// Replays the traffic stream against a materialized [`LocalFs`],
    /// counting outcomes. Permission denials are expected (the stream
    /// includes dissident actors); any other failure panics. The counts
    /// are part of the deterministic surface drivers can assert on.
    pub fn replay_local(&self, fs: &mut LocalFs) -> ReplayStats {
        let mut stats = ReplayStats::default();
        for op in &self.ops {
            match op {
                TrafficOp::Read { actor, file } => {
                    match fs.read(Self::uid(*actor), &self.files[*file as usize].path()) {
                        Ok(_) => stats.reads_ok += 1,
                        Err(_) => stats.reads_denied += 1,
                    }
                }
                TrafficOp::Write { actor, file, salt } => {
                    let f = &self.files[*file as usize];
                    let body = content_bytes(f.len as usize, *salt);
                    match fs.write(Self::uid(*actor), &f.path(), &body) {
                        Ok(()) => stats.writes_ok += 1,
                        Err(_) => stats.writes_denied += 1,
                    }
                }
                TrafficOp::Chmod { file, octal } => {
                    let f = &self.files[*file as usize];
                    fs.chmod(Self::uid(f.owner), &f.path(), Mode::from_octal(*octal))
                        .expect("owner chmod");
                    stats.chmods += 1;
                }
            }
        }
        stats
    }
}

/// Outcome counts from [`Enterprise::replay_local`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Reads that succeeded.
    pub reads_ok: usize,
    /// Reads denied by permissions.
    pub reads_denied: usize,
    /// Writes that succeeded.
    pub writes_ok: usize,
    /// Writes denied by permissions.
    pub writes_denied: usize,
    /// Owner chmods applied.
    pub chmods: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_front_loaded_and_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = HmacDrbg::from_seed_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "rank 0 ({}) should dwarf rank 50 ({})",
            counts[0],
            counts[50]
        );
        assert!(counts.iter().filter(|&&c| c > 0).count() > 30, "tail must still be sampled");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = Scale::Small.spec(0xE17E);
        let a = Enterprise::generate(&spec);
        let b = Enterprise::generate(&spec);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.stats, b.stats);
        let other = Enterprise::generate(&Scale::Small.spec(0xE17F));
        assert_ne!(a.fingerprint(), other.fingerprint(), "seed must matter");
    }

    #[test]
    fn materialized_population_obeys_the_graph() {
        let ent = Enterprise::generate(&Scale::Small.spec(0xBEEF));
        let mut fs = ent.materialize();
        // Every file readable by its owner and by each ACL grantee.
        for f in &ent.files {
            assert_eq!(fs.read(Enterprise::uid(f.owner), &f.path()).unwrap(), f.content());
            for &r in &f.acl_readers {
                fs.read(Enterprise::uid(r), &f.path())
                    .unwrap_or_else(|e| panic!("grantee u{r} denied on {}: {e:?}", f.path()));
            }
        }
        let stats = ent.replay_local(&mut fs);
        assert_eq!(
            stats.reads_ok
                + stats.reads_denied
                + stats.writes_ok
                + stats.writes_denied
                + stats.chmods,
            ent.ops.len()
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let ent = Enterprise::generate(&Scale::Small.spec(0xD15C));
        let s1 = ent.replay_local(&mut ent.materialize());
        let s2 = ent.replay_local(&mut ent.materialize());
        assert_eq!(s1, s2);
    }

    #[test]
    fn million_scale_generates_and_fingerprints_without_materializing() {
        // Smoke-scaled structural check of the Million spec: entity count
        // and graph-only generation. The full sweep runs from the bench
        // binary (SHAROES_SCALE=million).
        let spec = Scale::Million.spec(1);
        assert!(spec.entities() >= 1_000_000, "Million scale must clear 10^6 entities");
        let scaled = EnterpriseSpec { users: 2_000, groups: 100, files: 2_500, ops: 500, ..spec };
        let ent = Enterprise::generate(&scaled);
        assert_eq!(ent.fingerprint().len(), 32);
        assert!(ent.stats.max_group_size > scaled.users / scaled.groups);
        assert!(ent.stats.max_files_per_owner > scaled.files / scaled.users);
    }
}
