//! The entropy tape: a replayable byte stream behind every generator.
//!
//! In *recording* mode a tape appends fresh DRBG output as generators
//! consume it. In *replay* mode it serves a fixed byte string and pads with
//! zeros once exhausted. Because generators are pure functions of the bytes
//! they read, any tape denotes a valid generated value — which is what lets
//! the shrinker in [`crate::prop`] minimize failures by editing raw bytes
//! instead of needing a per-type shrinking algebra.
//!
//! Generators are written so that an all-zero tape produces the *simplest*
//! value (empty vec, zero integer, `None`, first variant), making
//! "zero more bytes" a universal simplification direction.

use sharoes_crypto::{HmacDrbg, RandomSource};

/// How many fresh bytes to pull from the DRBG at a time while recording.
const CHUNK: usize = 32;

/// A positional byte stream with optional fresh-entropy backing.
pub struct Tape {
    data: Vec<u8>,
    pos: usize,
    fresh: Option<HmacDrbg>,
}

impl Tape {
    /// A tape that records fresh bytes from `drbg` as they are consumed.
    pub fn recording(drbg: HmacDrbg) -> Tape {
        Tape { data: Vec::new(), pos: 0, fresh: Some(drbg) }
    }

    /// A tape that replays `data`, serving zeros past the end.
    pub fn replay(data: Vec<u8>) -> Tape {
        Tape { data, pos: 0, fresh: None }
    }

    /// Every byte recorded or replayed so far (including unread tail).
    pub fn recorded(&self) -> &[u8] {
        &self.data
    }

    /// The next byte.
    pub fn byte(&mut self) -> u8 {
        if self.pos >= self.data.len() {
            match &mut self.fresh {
                Some(drbg) => {
                    let mut chunk = [0u8; CHUNK];
                    drbg.fill_bytes(&mut chunk);
                    self.data.extend_from_slice(&chunk);
                }
                None => {
                    self.pos += 1;
                    return 0;
                }
            }
        }
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    /// Fills `buf` from the tape.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b = self.byte();
        }
    }

    /// A `u8` draw.
    pub fn u8(&mut self) -> u8 {
        self.byte()
    }

    /// A `u16` draw (big-endian).
    pub fn u16(&mut self) -> u16 {
        u16::from_be_bytes([self.byte(), self.byte()])
    }

    /// A `u32` draw (big-endian).
    pub fn u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_be_bytes(b)
    }

    /// A `u64` draw (big-endian).
    pub fn u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    /// A boolean draw; a zero byte is `false`.
    pub fn bool(&mut self) -> bool {
        self.byte() & 1 == 1
    }

    /// A draw in `[lo, hi)`; an all-zero tape yields `lo`.
    ///
    /// Panics when the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // One byte suffices for small spans, keeping tapes short (and
        // shrinker edits local).
        if span <= 1 << 8 {
            lo + self.u8() as u64 % span
        } else if span <= 1 << 16 {
            lo + self.u16() as u64 % span
        } else if span <= 1 << 32 {
            lo + self.u32() as u64 % span
        } else {
            lo + self.u64() % span
        }
    }

    /// A `usize` draw in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_pads_with_zeros() {
        let mut t = Tape::replay(vec![7, 8]);
        assert_eq!(t.byte(), 7);
        assert_eq!(t.byte(), 8);
        assert_eq!(t.byte(), 0);
        assert_eq!(t.u64(), 0);
    }

    #[test]
    fn recording_then_replaying_matches() {
        let mut rec = Tape::recording(HmacDrbg::from_seed_u64(1));
        let vals: Vec<u64> = (0..10).map(|_| rec.u64()).collect();
        let mut rep = Tape::replay(rec.recorded().to_vec());
        let again: Vec<u64> = (0..10).map(|_| rep.u64()).collect();
        assert_eq!(vals, again);
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut t = Tape::recording(HmacDrbg::from_seed_u64(2));
        for _ in 0..1000 {
            let v = t.usize_in(3, 9);
            assert!((3..9).contains(&v));
        }
        let mut z = Tape::replay(vec![]);
        assert_eq!(z.usize_in(3, 9), 3, "zero tape takes the low end");
    }
}
