//! Value generators over the entropy [`Tape`].
//!
//! A [`Gen<T>`] is a pure function from tape bytes to a value. Composition
//! is ordinary function composition ([`Gen::map`], [`Gen::from_fn`] calling
//! [`Gen::sample`] on sub-generators), and shrinking comes for free from the
//! tape representation — no per-type shrinker implementations exist.
//!
//! Conventions that make tape-shrinking effective:
//!
//! * an all-zero tape produces the simplest value (`0`, `""`, `[]`, `None`,
//!   first `one_of` variant);
//! * length draws come before element draws, so deleting a tape suffix
//!   shortens collections.

use crate::tape::Tape;
use std::rc::Rc;

/// Why a generator (or a `prop_assume!`) discarded the case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected(pub &'static str);

/// Result of sampling: a value, or a discarded case.
pub type GenResult<T> = Result<T, Rejected>;

/// The sampling function a [`Gen`] wraps.
type SampleFn<T> = dyn Fn(&mut Tape) -> GenResult<T>;

/// A generator of `T` values.
pub struct Gen<T> {
    f: Rc<SampleFn<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a sampling function. The function may draw from
    /// sub-generators via [`Gen::sample`] and propagate rejections with `?`.
    pub fn from_fn(f: impl Fn(&mut Tape) -> GenResult<T> + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Draws one value from the tape.
    pub fn sample(&self, t: &mut Tape) -> GenResult<T> {
        (self.f)(t)
    }

    /// A generator that always yields `value`.
    pub fn constant(value: T) -> Gen<T>
    where
        T: Clone,
    {
        Gen::from_fn(move |_| Ok(value.clone()))
    }

    /// Applies `g` to every generated value.
    pub fn map<U: 'static>(self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::from_fn(move |t| self.sample(t).map(&g))
    }

    /// Keeps only values satisfying `pred`, redrawing a bounded number of
    /// times before rejecting the whole case.
    pub fn filter(self, label: &'static str, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        Gen::from_fn(move |t| {
            for _ in 0..64 {
                let v = self.sample(t)?;
                if pred(&v) {
                    return Ok(v);
                }
            }
            Err(Rejected(label))
        })
    }
}

/// Any `bool`.
pub fn bools() -> Gen<bool> {
    Gen::from_fn(|t| Ok(t.bool()))
}

/// Any `u8`.
pub fn u8s() -> Gen<u8> {
    Gen::from_fn(|t| Ok(t.u8()))
}

/// Any `u16`.
pub fn u16s() -> Gen<u16> {
    Gen::from_fn(|t| Ok(t.u16()))
}

/// Any `u32`.
pub fn u32s() -> Gen<u32> {
    Gen::from_fn(|t| Ok(t.u32()))
}

/// Any `u64`.
pub fn u64s() -> Gen<u64> {
    Gen::from_fn(|t| Ok(t.u64()))
}

/// Any `usize`.
pub fn usizes() -> Gen<usize> {
    Gen::from_fn(|t| Ok(t.u64() as usize))
}

/// Integer types that [`in_range`] can sample uniformly.
pub trait UniformInt: Copy + 'static {
    /// Converts to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {
        $(impl UniformInt for $ty {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $ty }
        })*
    };
}
uniform_int!(u8, u16, u32, u64, usize);

/// A draw in the half-open range `[lo, hi)`.
pub fn in_range<T: UniformInt>(range: std::ops::Range<T>) -> Gen<T> {
    let (lo, hi) = (range.start.to_u64(), range.end.to_u64());
    assert!(lo < hi, "in_range requires a non-empty range");
    Gen::from_fn(move |t| Ok(T::from_u64(t.u64_in(lo, hi))))
}

/// A draw in the closed range `[lo, hi]`.
pub fn in_range_incl<T: UniformInt>(range: std::ops::RangeInclusive<T>) -> Gen<T> {
    let (lo, hi) = (range.start().to_u64(), range.end().to_u64());
    assert!(lo <= hi, "in_range_incl requires a non-empty range");
    Gen::from_fn(move |t| {
        // hi may be T::MAX; sample the span size with wrap-safe arithmetic.
        if lo == 0 && hi == u64::MAX {
            return Ok(T::from_u64(t.u64()));
        }
        Ok(T::from_u64(t.u64_in(lo, hi + 1)))
    })
}

/// A vector of `len_range.start..len_range.end` elements.
pub fn vecs<T: 'static>(elem: Gen<T>, len_range: std::ops::Range<usize>) -> Gen<Vec<T>> {
    let (lo, hi) = (len_range.start, len_range.end);
    Gen::from_fn(move |t| {
        let len = t.usize_in(lo, hi);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(elem.sample(t)?);
        }
        Ok(out)
    })
}

/// A byte array filled from the tape.
pub fn byte_arrays<const N: usize>() -> Gen<[u8; N]> {
    Gen::from_fn(|t| {
        let mut out = [0u8; N];
        t.fill(&mut out);
        Ok(out)
    })
}

/// `Some(value)` roughly three times out of four; a zero tape gives `None`.
pub fn option_of<T: 'static>(inner: Gen<T>) -> Gen<Option<T>> {
    Gen::from_fn(move |t| if t.u8() % 4 == 0 { Ok(None) } else { Ok(Some(inner.sample(t)?)) })
}

/// Picks one of the variants uniformly; a zero tape picks the first.
pub fn one_of<T: 'static>(variants: Vec<Gen<T>>) -> Gen<T> {
    assert!(!variants.is_empty(), "one_of requires at least one variant");
    Gen::from_fn(move |t| {
        let i = t.usize_in(0, variants.len());
        variants[i].sample(t)
    })
}

/// A string of characters drawn from `alphabet`.
pub fn string_of(alphabet: &'static str, len_range: std::ops::Range<usize>) -> Gen<String> {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "string_of requires a non-empty alphabet");
    let (lo, hi) = (len_range.start, len_range.end);
    Gen::from_fn(move |t| {
        let len = t.usize_in(lo, hi);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            s.push(chars[t.usize_in(0, chars.len())]);
        }
        Ok(s)
    })
}

/// Lowercase `[a-z]`.
pub const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

/// `[a-zA-Z0-9_.-]` — the filesystem-name alphabet used across the suites.
pub const NAMEY: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";

/// Printable ASCII `[ -~]` strings.
pub fn ascii_strings(len_range: std::ops::Range<usize>) -> Gen<String> {
    let (lo, hi) = (len_range.start, len_range.end);
    Gen::from_fn(move |t| {
        let len = t.usize_in(lo, hi);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            s.push((0x20 + t.u8() % 0x5F) as char);
        }
        Ok(s)
    })
}

/// Arbitrary printable characters, ASCII-biased with a multibyte tail —
/// hostile-ish input for parsers (stands in for proptest's `\PC`).
pub fn any_strings(len_range: std::ops::Range<usize>) -> Gen<String> {
    const EXOTIC: &[char] =
        &['é', 'ß', 'λ', 'Ω', '→', '中', '日', 'й', '🦀', '\u{200b}', '�', '\u{AD}'];
    let (lo, hi) = (len_range.start, len_range.end);
    Gen::from_fn(move |t| {
        let len = t.usize_in(lo, hi);
        let mut s = String::new();
        for _ in 0..len {
            let b = t.u8();
            if b < 0xE0 {
                s.push((0x20 + b % 0x5F) as char);
            } else {
                s.push(EXOTIC[(b - 0xE0) as usize % EXOTIC.len()]);
            }
        }
        Ok(s)
    })
}

/// An abstract index into collections whose length is only known later
/// (mirrors `proptest::sample::Index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(pub u64);

impl Index {
    /// Resolves to a concrete index in `[0, len)`; `0` when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.0 % len as u64) as usize
        }
    }
}

/// Any [`Index`].
pub fn indices() -> Gen<Index> {
    Gen::from_fn(|t| Ok(Index(t.u64())))
}

/// A map with unique keys, rendered as a sorted entry vector.
pub fn entry_maps<K: Ord + 'static, V: 'static>(
    keys: Gen<K>,
    values: Gen<V>,
    count_range: std::ops::Range<usize>,
) -> Gen<Vec<(K, V)>> {
    let (lo, hi) = (count_range.start, count_range.end);
    Gen::from_fn(move |t| {
        let want = t.usize_in(lo, hi);
        let mut map = std::collections::BTreeMap::new();
        // Duplicate keys collapse; bounded extra draws top the map up.
        for _ in 0..want * 2 {
            if map.len() >= want {
                break;
            }
            map.insert(keys.sample(t)?, values.sample(t)?);
        }
        Ok(map.into_iter().collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharoes_crypto::HmacDrbg;

    fn fresh() -> Tape {
        Tape::recording(HmacDrbg::from_seed_u64(0xF00))
    }

    #[test]
    fn zero_tape_gives_minimal_values() {
        let mut t = Tape::replay(vec![]);
        assert_eq!(vecs(u8s(), 0..10).sample(&mut t).unwrap(), Vec::<u8>::new());
        assert_eq!(in_range(5u32..50).sample(&mut t).unwrap(), 5);
        assert_eq!(option_of(u64s()).sample(&mut t).unwrap(), None);
        assert_eq!(string_of(LOWER, 0..8).sample(&mut t).unwrap(), "");
        assert!(!bools().sample(&mut t).unwrap());
    }

    #[test]
    fn filter_rejects_impossible_predicates() {
        let mut t = fresh();
        let g = u8s().filter("never", |_| false);
        assert!(g.sample(&mut t).is_err());
    }

    #[test]
    fn filter_passes_satisfiable_predicates() {
        let mut t = fresh();
        let g = u8s().filter("odd", |v| v % 2 == 1);
        for _ in 0..50 {
            assert_eq!(g.sample(&mut t).unwrap() % 2, 1);
        }
    }

    #[test]
    fn in_range_incl_covers_full_u8_domain() {
        let mut t = fresh();
        let g = in_range_incl(1u8..=255);
        for _ in 0..100 {
            assert!(g.sample(&mut t).unwrap() >= 1);
        }
        let full = in_range_incl(0u64..=u64::MAX);
        full.sample(&mut t).unwrap();
    }

    #[test]
    fn entry_maps_have_unique_sorted_keys() {
        let mut t = fresh();
        let g = entry_maps(in_range(0u8..6), u8s(), 0..12);
        for _ in 0..50 {
            let m = g.sample(&mut t).unwrap();
            for pair in m.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
        }
    }

    #[test]
    fn strings_respect_alphabet_and_length() {
        let mut t = fresh();
        let g = string_of(NAMEY, 1..25);
        for _ in 0..50 {
            let s = g.sample(&mut t).unwrap();
            assert!((1..25).contains(&s.chars().count()));
            assert!(s.chars().all(|c| NAMEY.contains(c)));
        }
    }
}
