//! Fixed-seed cached asymmetric keys for tests and benches.
//!
//! RSA/ESIGN key generation is prime search — by far the slowest thing a
//! test can do. These pools generate a handful of keys once per process
//! from fixed seeds (independent of `SHAROES_TEST_SEED`, so cached keys
//! never change the meaning of a seed sweep) and hand out references.

use sharoes_crypto::{EsignPrivateKey, HmacDrbg, RsaPrivateKey};
use std::sync::OnceLock;

/// Two 512-bit RSA keys (test-sized; production uses 2048).
pub fn rsa512() -> &'static [RsaPrivateKey; 2] {
    static KEYS: OnceLock<[RsaPrivateKey; 2]> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = HmacDrbg::new(b"sharoes-testkit rsa512 pool");
        [
            RsaPrivateKey::generate(512, &mut rng).expect("rsa keygen"),
            RsaPrivateKey::generate(512, &mut rng).expect("rsa keygen"),
        ]
    })
}

/// Two 768-bit ESIGN keys (test-sized).
pub fn esign768() -> &'static [EsignPrivateKey; 2] {
    static KEYS: OnceLock<[EsignPrivateKey; 2]> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = HmacDrbg::new(b"sharoes-testkit esign768 pool");
        [
            EsignPrivateKey::generate(768, &mut rng).expect("esign keygen"),
            EsignPrivateKey::generate(768, &mut rng).expect("esign keygen"),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharoes_crypto::RandomSource;

    #[test]
    fn pools_are_cached_and_usable() {
        let a = rsa512();
        let b = rsa512();
        assert!(std::ptr::eq(a, b), "second call must reuse the pool");
        let mut rng = HmacDrbg::from_seed_u64(9);
        let ct = a[0].public_key().encrypt(&mut rng, b"pooled").unwrap();
        assert_eq!(a[0].decrypt(&ct).unwrap(), b"pooled");
        let sig = {
            let mut r = HmacDrbg::from_seed_u64(10);
            let mut buf = [0u8; 4];
            r.fill_bytes(&mut buf);
            esign768()[0].sign(&mut r, &buf)
        };
        let mut r = HmacDrbg::from_seed_u64(10);
        let mut buf = [0u8; 4];
        r.fill_bytes(&mut buf);
        esign768()[0].public_key().verify(&buf, &sig).unwrap();
    }
}
