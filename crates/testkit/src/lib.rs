//! # sharoes-testkit
//!
//! The in-tree deterministic test and benchmark substrate for the Sharoes
//! workspace. Nothing here touches the network or the crates.io registry;
//! the whole kit is built from `std` plus the workspace's own
//! `sharoes-crypto` crate, which keeps `cargo build --offline && cargo test
//! --offline` hermetic and byte-for-byte reproducible.
//!
//! Three pieces:
//!
//! * [`rng`] — a seeded randomness facade over the NIST HMAC-DRBG in
//!   `sharoes-crypto`. Every test draws entropy through this, so two runs
//!   with the same seed are identical. `SHAROES_TEST_SEED` overrides the
//!   default seed.
//! * [`prop`] + [`gen`] + [`tape`] — a minimal property-testing runner. The
//!   [`prop!`] macro generates `#[test]` functions; generators draw bytes
//!   from a recorded [`tape::Tape`], and failures are shrunk by greedily
//!   simplifying the tape (delete chunks, zero chunks, shrink bytes), which
//!   shrinks *any* composed generator without per-type shrinker code.
//! * [`bench`] — a wall-clock micro-benchmark harness (warmup, N samples,
//!   median/p95 reporting) for `harness = false` bench targets.
//! * [`enterprise`] — a seeded enterprise-scale population generator
//!   (Zipf group membership and sharing graphs, mixed traffic streams),
//!   env-tunable via `SHAROES_SCALE` from CI-small to million-entity.
//!
//! ## Example
//!
//! ```
//! use sharoes_testkit::prelude::*;
//!
//! sharoes_testkit::prop! {
//!     #![cases(64)]
//!     fn reverse_is_involutive(v in gen::vecs(gen::u8s(), 0..64)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(w, v);
//!     }
//! }
//! # fn main() {}
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod enterprise;
pub mod gen;
pub mod keys;
pub mod prop;
pub mod rng;
pub mod tape;

/// One-stop imports for test files.
pub mod prelude {
    pub use crate::enterprise::{Enterprise, EnterpriseSpec, Scale, TrafficOp};
    pub use crate::gen::{self, Gen, Index, Rejected};
    pub use crate::prop::{CaseError, CaseResult, Config};
    pub use crate::rng::{test_rng, test_seed};
    pub use crate::tape::Tape;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use sharoes_crypto::{HmacDrbg, RandomSource};
}
