//! The property-test runner: deterministic case generation, failure
//! detection, and greedy tape shrinking.
//!
//! [`crate::prop!`] expands each property into a `#[test]` that calls
//! [`run`]. Cases are generated from a DRBG derived from
//! `(seed, test name, case index)`, so two consecutive `cargo test` runs
//! with the same seed execute byte-identical cases. On failure the recorded
//! entropy tape is minimized (delete chunks, zero chunks, shrink bytes) and
//! the property is re-run on the minimal tape to report the shrunk
//! counterexample values.

use crate::tape::Tape;
use sharoes_crypto::HmacDrbg;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// How a single case concluded unsuccessfully.
#[derive(Debug)]
pub enum CaseError {
    /// The case was discarded (`prop_assume!` or generator filter).
    Reject(&'static str),
    /// The property was falsified.
    Fail(String),
}

/// What a property body returns.
pub type CaseResult = Result<(), CaseError>;

impl From<crate::gen::Rejected> for CaseError {
    fn from(r: crate::gen::Rejected) -> Self {
        CaseError::Reject(r.0)
    }
}

/// Runner configuration. `#![cases(n)]` inside [`crate::prop!`] maps to the
/// [`Config::cases`] builder; `SHAROES_PROP_CASES` overrides every suite.
#[derive(Clone, Debug)]
pub struct Config {
    cases: u32,
    cases_pinned_by_env: bool,
    max_rejects: u32,
    max_shrink_runs: u32,
    seed: u64,
}

/// The default number of cases when neither the suite nor the environment
/// says otherwise.
pub const DEFAULT_CASES: u32 = 64;

impl Default for Config {
    fn default() -> Config {
        let (cases, pinned) = match std::env::var("SHAROES_PROP_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
        {
            Some(n) => (n.max(1), true),
            None => (DEFAULT_CASES, false),
        };
        Config {
            cases,
            cases_pinned_by_env: pinned,
            max_rejects: 4096,
            max_shrink_runs: 512,
            seed: crate::rng::test_seed(),
        }
    }
}

impl Config {
    /// Sets the case count (unless `SHAROES_PROP_CASES` pinned it).
    pub fn cases(mut self, n: u32) -> Config {
        if !self.cases_pinned_by_env {
            self.cases = n.max(1);
        }
        self
    }

    /// Sets the reject budget before the runner gives up.
    pub fn max_rejects(mut self, n: u32) -> Config {
        self.max_rejects = n;
        self
    }

    /// Sets the shrink-run budget.
    pub fn max_shrink_runs(mut self, n: u32) -> Config {
        self.max_shrink_runs = n;
        self
    }

    /// Overrides the seed (tests normally inherit `SHAROES_TEST_SEED`).
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

fn case_drbg(seed: u64, name: &str, index: u64) -> HmacDrbg {
    let mut material = Vec::with_capacity(16 + name.len());
    material.extend_from_slice(&seed.to_be_bytes());
    material.extend_from_slice(name.as_bytes());
    material.extend_from_slice(&index.to_be_bytes());
    HmacDrbg::new(&material)
}

/// Extracts a displayable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Suppresses default panic-hook output while shrink replays intentionally
/// panic. Installed process-wide once; counts engaged silencers so
/// concurrent prop tests compose.
struct PanicSilencer;

static SILENCED: AtomicUsize = AtomicUsize::new(0);
static INSTALL_HOOK: Once = Once::new();

impl PanicSilencer {
    fn engage() -> PanicSilencer {
        INSTALL_HOOK.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if SILENCED.load(Ordering::SeqCst) == 0 {
                    previous(info);
                }
            }));
        });
        SILENCED.fetch_add(1, Ordering::SeqCst);
        PanicSilencer
    }
}

impl Drop for PanicSilencer {
    fn drop(&mut self) {
        SILENCED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A case function: draws values from the tape and evaluates the property.
/// When `collect` is set it also returns `name = value` display strings for
/// the generated arguments.
pub type CaseFn<'a> = &'a dyn Fn(&mut Tape, bool) -> (Option<Vec<String>>, CaseResult);

/// Runs a property to completion, panicking with a shrunk counterexample on
/// falsification.
pub fn run(name: &str, cfg: Config, case: CaseFn<'_>) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < cfg.cases {
        let mut tape = Tape::recording(case_drbg(cfg.seed, name, case_index));
        case_index += 1;
        match case(&mut tape, false).1 {
            Ok(()) => passed += 1,
            Err(CaseError::Reject(label)) => {
                rejected += 1;
                if rejected > cfg.max_rejects {
                    panic!(
                        "[{name}] gave up after {rejected} rejected cases \
                         ({passed} passed; last filter: {label:?})"
                    );
                }
            }
            Err(CaseError::Fail(first_msg)) => {
                report_failure(name, &cfg, case, tape.recorded(), case_index - 1, &first_msg)
            }
        }
    }
}

fn report_failure(
    name: &str,
    cfg: &Config,
    case: CaseFn<'_>,
    tape_data: &[u8],
    case_index: u64,
    first_msg: &str,
) -> ! {
    let replay_fails = |data: &[u8]| {
        let mut t = Tape::replay(data.to_vec());
        matches!(case(&mut t, false).1, Err(CaseError::Fail(_)))
    };
    let (minimal, shrink_runs) = {
        let _quiet = PanicSilencer::engage();
        shrink(tape_data, cfg.max_shrink_runs, &replay_fails)
    };
    let (reprs, final_result) = {
        let _quiet = PanicSilencer::engage();
        let mut t = Tape::replay(minimal.clone());
        case(&mut t, true)
    };
    let message = match final_result {
        Err(CaseError::Fail(m)) => m,
        // Shrinking is validated by `replay_fails`, so the minimal tape
        // must fail; fall back defensively to the original message.
        _ => first_msg.to_string(),
    };
    let args = reprs
        .unwrap_or_default()
        .into_iter()
        .map(|line| format!("\n    {line}"))
        .collect::<String>();
    panic!(
        "[{name}] property falsified (case {case_index}, seed {seed:#018x}):\n  \
         {message}\n  minimal input after {shrink_runs} shrink runs:{args}\n  \
         rerun with SHAROES_TEST_SEED={seed} to reproduce",
        seed = cfg.seed,
    );
}

/// Greedy tape minimization: repeatedly applies the first simplifying edit
/// (chunk deletion, chunk zeroing, byte shrinking) that still falsifies the
/// property, until a fixpoint or the run budget is exhausted.
pub fn shrink(data: &[u8], max_runs: u32, still_fails: &dyn Fn(&[u8]) -> bool) -> (Vec<u8>, u32) {
    let mut best = data.to_vec();
    trim_zero_tail(&mut best);
    let mut runs = 0u32;
    'passes: loop {
        // Chunk deletion and zeroing, coarse to fine.
        let mut size = best.len().max(1);
        while size >= 1 {
            let mut start = 0;
            while start < best.len() {
                let end = (start + size).min(best.len());
                // Delete [start, end).
                if runs >= max_runs {
                    break 'passes;
                }
                let mut candidate = best.clone();
                candidate.drain(start..end);
                runs += 1;
                if still_fails(&candidate) {
                    best = candidate;
                    trim_zero_tail(&mut best);
                    continue 'passes;
                }
                // Zero [start, end) when it isn't already zero.
                if best[start..end].iter().any(|&b| b != 0) {
                    if runs >= max_runs {
                        break 'passes;
                    }
                    let mut candidate = best.clone();
                    candidate[start..end].iter_mut().for_each(|b| *b = 0);
                    runs += 1;
                    if still_fails(&candidate) {
                        best = candidate;
                        trim_zero_tail(&mut best);
                        continue 'passes;
                    }
                }
                start += size;
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }
        // Per-byte value shrinking toward zero.
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            for replacement in [best[i] / 2, best[i] - 1] {
                if runs >= max_runs {
                    break 'passes;
                }
                let mut candidate = best.clone();
                candidate[i] = replacement;
                runs += 1;
                if still_fails(&candidate) {
                    best = candidate;
                    trim_zero_tail(&mut best);
                    continue 'passes;
                }
            }
        }
        break;
    }
    (best, runs)
}

/// Trailing zeros replay identically to an exhausted tape; dropping them is
/// free simplification needing no verification run.
fn trim_zero_tail(data: &mut Vec<u8>) {
    while data.last() == Some(&0) {
        data.pop();
    }
}

/// Defines property tests.
///
/// ```
/// use sharoes_testkit::prelude::*;
///
/// sharoes_testkit::prop! {
///     #![cases(32)]
///     fn addition_commutes(a in gen::u32s(), b in gen::u32s()) {
///         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
/// # fn main() {}
/// ```
///
/// Each `fn` becomes a `#[test]`. Arguments use `name in generator` syntax;
/// bodies may use [`crate::prop_assert!`], [`crate::prop_assert_eq!`],
/// [`crate::prop_assert_ne!`], [`crate::prop_assume!`], or plain panics.
#[macro_export]
macro_rules! prop {
    // Internal muncher rules first; the public entry rule is last because
    // it matches any token stream. Config attrs are peeled one at a time
    // and carried along (macro_rules cannot reference an outer repetition
    // inside a sibling one).
    (@munch ($($cfg_key:ident($cfg_val:expr),)*)
        #![$key:ident($val:expr)]
        $($rest:tt)*
    ) => {
        $crate::prop!(@munch ($($cfg_key($cfg_val),)* $key($val),) $($rest)*);
    };
    (@munch ($($cfg_key:ident($cfg_val:expr),)*)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            #[allow(unused_mut)]
            let mut __cfg = $crate::prop::Config::default();
            $(__cfg = __cfg.$cfg_key($cfg_val);)*
            $crate::prop::run(
                stringify!($name),
                __cfg,
                &|__tape: &mut $crate::tape::Tape, __collect: bool| {
                    $(
                        let $arg = match ($gen).sample(__tape) {
                            Ok(v) => v,
                            Err(r) => {
                                return (None, Err($crate::prop::CaseError::from(r)))
                            }
                        };
                    )+
                    let __reprs = if __collect {
                        Some(vec![$(
                            format!("{} = {:?}", stringify!($arg), &$arg)
                        ),+])
                    } else {
                        None
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> $crate::prop::CaseResult {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    let __result = match __outcome {
                        Ok(r) => r,
                        Err(payload) => Err($crate::prop::CaseError::Fail(
                            $crate::prop::panic_message(payload),
                        )),
                    };
                    (__reprs, __result)
                },
            );
        }
        $crate::prop!(@munch ($($cfg_key($cfg_val),)*) $($rest)*);
    };
    (@munch ($($cfg_key:ident($cfg_val:expr),)*)) => {};
    ($($all:tt)+) => {
        $crate::prop!(@munch () $($all)+);
    };
}

/// Asserts a condition inside a [`crate::prop!`] body, failing the case
/// (and triggering shrinking) instead of aborting the whole runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::prop::CaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`crate::prop!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::prop::CaseError::Fail(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::prop::CaseError::Fail(format!(
                "{}\n    left: {:?}\n   right: {:?}",
                format!($($fmt)*),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a [`crate::prop!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::prop::CaseError::Fail(format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::prop::CaseError::Fail(format!(
                "{}\n    both: {:?}",
                format!($($fmt)*),
                __l
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::Reject(stringify!($cond)));
        }
    };
    ($cond:expr, $label:literal $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::Reject($label));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_minimizes_a_threshold_failure() {
        // Property: "fails when the first byte is >= 10". Minimal failing
        // tape should be a single byte of exactly 10.
        let failing = vec![200u8, 77, 3, 9, 250, 1];
        let (min, _) = shrink(&failing, 4096, &|d| !d.is_empty() && d[0] >= 10);
        assert_eq!(min, vec![10]);
    }

    #[test]
    fn shrink_respects_budget() {
        let failing = vec![255u8; 64];
        let (_, runs) = shrink(&failing, 7, &|d| d.iter().any(|&b| b > 0));
        assert!(runs <= 7);
    }

    #[test]
    fn shrink_handles_always_failing_property() {
        let (min, _) = shrink(&[1, 2, 3], 4096, &|_| true);
        assert!(min.is_empty());
    }
}
