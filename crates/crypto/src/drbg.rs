//! Random sources: the OS-backed generator and a deterministic HMAC-DRBG.
//!
//! All randomness used by key generation, padding, and IVs flows through the
//! [`RandomSource`] trait so tests and benchmarks can substitute the
//! reproducible [`HmacDrbg`] (NIST SP 800-90A HMAC_DRBG over SHA-256) for the
//! system generator.

use crate::hmac::hmac_sha256;

/// A source of random bytes.
pub trait RandomSource {
    /// Fills `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]);

    /// Returns a random 64-bit value.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }
}

/// OS-backed randomness.
///
/// Reads `/dev/urandom` where available; on platforms without it, falls back
/// to an [`HmacDrbg`] seeded from process-unique entropy (clock, pid, thread
/// id, stack address). The fallback is not suitable for production key
/// material, but every production path can inject its own [`RandomSource`].
pub struct SystemRandom(SystemSource);

enum SystemSource {
    Dev(std::fs::File),
    Fallback(HmacDrbg),
}

impl SystemRandom {
    /// Opens a handle to the OS generator (or the seeded fallback).
    pub fn new() -> Self {
        match std::fs::File::open("/dev/urandom") {
            Ok(f) => SystemRandom(SystemSource::Dev(f)),
            Err(_) => SystemRandom(SystemSource::Fallback(Self::fallback_drbg())),
        }
    }

    fn fallback_drbg() -> HmacDrbg {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut seed = Vec::with_capacity(64);
        let now =
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap_or_default();
        seed.extend_from_slice(&now.as_nanos().to_be_bytes());
        seed.extend_from_slice(&std::process::id().to_be_bytes());
        let stack_probe = 0u8;
        seed.extend_from_slice(&(&stack_probe as *const u8 as usize).to_be_bytes());
        seed.extend_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_be_bytes());
        let tid = std::thread::current().id();
        seed.extend_from_slice(format!("{tid:?}").as_bytes());
        HmacDrbg::new(&seed)
    }
}

impl Default for SystemRandom {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomSource for SystemRandom {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        match &mut self.0 {
            SystemSource::Dev(f) => {
                use std::io::Read;
                if f.read_exact(buf).is_err() {
                    // A torn read from /dev/urandom should be impossible;
                    // degrade to the fallback rather than panic.
                    let mut drbg = Self::fallback_drbg();
                    drbg.fill_bytes(buf);
                    self.0 = SystemSource::Fallback(drbg);
                }
            }
            SystemSource::Fallback(drbg) => drbg.fill_bytes(buf),
        }
    }
}

/// Deterministic HMAC-DRBG (SHA-256) per NIST SP 800-90A.
///
/// Two instances created with the same seed produce identical streams, which
/// makes key generation in tests and benchmark fixtures reproducible.
#[derive(Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material.
    pub fn new(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg { k: [0u8; 32], v: [1u8; 32], reseed_counter: 1 };
        drbg.update(Some(seed));
        drbg
    }

    /// Convenience constructor from a 64-bit seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        Self::new(&seed.to_be_bytes())
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, seed: &[u8]) {
        self.update(Some(seed));
        self.reseed_counter = 1;
    }

    fn update(&mut self, data: Option<&[u8]>) {
        let mut msg = Vec::with_capacity(32 + 1 + data.map_or(0, |d| d.len()));
        msg.extend_from_slice(&self.v);
        msg.push(0x00);
        if let Some(d) = data {
            msg.extend_from_slice(d);
        }
        self.k = hmac_sha256(&self.k, &msg);
        self.v = hmac_sha256(&self.k, &self.v);
        if let Some(d) = data {
            let mut msg = Vec::with_capacity(32 + 1 + d.len());
            msg.extend_from_slice(&self.v);
            msg.push(0x01);
            msg.extend_from_slice(d);
            self.k = hmac_sha256(&self.k, &msg);
            self.v = hmac_sha256(&self.k, &self.v);
        }
    }
}

impl RandomSource for HmacDrbg {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut offset = 0;
        while offset < buf.len() {
            self.v = hmac_sha256(&self.k, &self.v);
            let take = (buf.len() - offset).min(32);
            buf[offset..offset + take].copy_from_slice(&self.v[..take]);
            offset += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drbg_is_deterministic() {
        let mut a = HmacDrbg::new(b"seed material");
        let mut b = HmacDrbg::new(b"seed material");
        let mut ba = [0u8; 77];
        let mut bb = [0u8; 77];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba.to_vec(), bb.to_vec());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-a");
        let mut b = HmacDrbg::new(b"seed-b");
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn successive_outputs_differ() {
        let mut a = HmacDrbg::from_seed_u64(42);
        let x = a.next_u64();
        let y = a.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_seed_u64(7);
        let mut b = HmacDrbg::from_seed_u64(7);
        b.reseed(b"extra");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn system_random_produces_nonconstant_output() {
        let mut r = SystemRandom::new();
        let mut buf = [0u8; 64];
        r.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|&b| b != 0) || {
                // Astronomically unlikely; retry once to avoid a flaky test.
                r.fill_bytes(&mut buf);
                buf.iter().any(|&b| b != 0)
            }
        );
    }
}
