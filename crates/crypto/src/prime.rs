//! Primality testing and random prime generation.
//!
//! Candidates are sieved against a table of small primes and then subjected
//! to Miller–Rabin with random bases. Used by RSA and ESIGN key generation.

use crate::bignum::BigUint;
use crate::drbg::RandomSource;
use crate::error::CryptoError;

/// Number of Miller–Rabin rounds; 2^-128 error bound for random candidates.
const MILLER_RABIN_ROUNDS: usize = 32;

/// Small primes used for trial division (all odd primes below 2000).
fn small_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let limit = 2000usize;
        let mut is_comp = vec![false; limit];
        let mut primes = Vec::new();
        for n in 2..limit {
            if !is_comp[n] {
                primes.push(n as u64);
                let mut m = n * n;
                while m < limit {
                    is_comp[m] = true;
                    m += n;
                }
            }
        }
        primes
    })
}

/// Deterministic trial division by the small-prime table.
///
/// Returns `Some(true/false)` when trial division decides, `None` otherwise.
fn trial_division(n: &BigUint) -> Option<bool> {
    for &p in small_primes() {
        let pp = BigUint::from_u64(p);
        match n.cmp_ref(&pp) {
            std::cmp::Ordering::Less => return Some(false), // n < 2 handled by caller
            std::cmp::Ordering::Equal => return Some(true),
            std::cmp::Ordering::Greater => {}
        }
        let (_, r) = n.div_rem_u64(p);
        if r == 0 {
            return Some(false);
        }
    }
    None
}

/// Miller–Rabin probabilistic primality test.
pub fn is_probable_prime<R: RandomSource + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if n.cmp_ref(&two) == std::cmp::Ordering::Equal {
        return true;
    }
    if n.is_even() {
        return false;
    }
    if let Some(decided) = trial_division(n) {
        return decided;
    }

    // n - 1 = d * 2^s with d odd
    let n_minus_1 = n.sub(&BigUint::one());
    let s = {
        let mut s = 0usize;
        let mut t = n_minus_1.clone();
        while t.is_even() {
            t = t.shr(1);
            s += 1;
        }
        s
    };
    let d = n_minus_1.shr(s);

    let ctx = crate::montgomery::MontgomeryCtx::new(n.clone());
    'witness: for _ in 0..MILLER_RABIN_ROUNDS {
        // Random base in [2, n-2]
        let a = loop {
            let a = BigUint::random_below(rng, &n_minus_1);
            if !a.is_zero() && !a.is_one() {
                break a;
            }
        };
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x.cmp_ref(&n_minus_1) == std::cmp::Ordering::Equal {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = ctx.mul_mod(&x, &x);
            if x.cmp_ref(&n_minus_1) == std::cmp::Ordering::Equal {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn generate_prime<R: RandomSource + ?Sized>(
    bits: usize,
    rng: &mut R,
) -> Result<BigUint, CryptoError> {
    assert!(bits >= 8, "prime size too small: {bits} bits");
    // Expected candidates ~ bits * ln2 / 2; allow a generous budget.
    let budget = bits * 64;
    for _ in 0..budget {
        let mut candidate = BigUint::random_bits(rng, bits);
        // Force odd and force the top two bits so products of two such
        // primes have full bit length (standard RSA trick).
        candidate.set_bit(0);
        candidate.set_bit(bits - 1);
        if bits >= 2 {
            candidate.set_bit(bits - 2);
        }
        if is_probable_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::KeyGeneration("prime search budget exhausted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_numbers_classified() {
        let mut rng = HmacDrbg::from_seed_u64(1);
        let primes = [2u64, 3, 5, 7, 11, 13, 1999, 2003, 104729, 1_000_000_007];
        let composites = [0u64, 1, 4, 6, 9, 15, 2001, 104730, 1_000_000_008];
        for p in primes {
            assert!(is_probable_prime(&n(p), &mut rng), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_probable_prime(&n(c), &mut rng), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729 fool Fermat but not Miller–Rabin.
        let mut rng = HmacDrbg::from_seed_u64(2);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_probable_prime(&n(c), &mut rng), "{c}");
        }
    }

    #[test]
    fn known_large_prime() {
        // 2^127 - 1 (Mersenne prime)
        let mut rng = HmacDrbg::from_seed_u64(3);
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        assert!(is_probable_prime(&p, &mut rng));
        // 2^128 - 1 is composite.
        let c = BigUint::one().shl(128).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, &mut rng));
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = HmacDrbg::from_seed_u64(4);
        for bits in [64usize, 128, 256] {
            let p = generate_prime(bits, &mut rng).unwrap();
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, &mut rng));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p1 = generate_prime(96, &mut HmacDrbg::from_seed_u64(99)).unwrap();
        let p2 = generate_prime(96, &mut HmacDrbg::from_seed_u64(99)).unwrap();
        assert_eq!(p1, p2);
        let p3 = generate_prime(96, &mut HmacDrbg::from_seed_u64(100)).unwrap();
        assert_ne!(p1, p3);
    }
}
