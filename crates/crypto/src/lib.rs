//! # sharoes-crypto
//!
//! From-scratch cryptographic substrate for the Sharoes reproduction
//! (Singh & Liu, *Sharoes: A Data Sharing Platform for Outsourced Enterprise
//! Storage Environments*, ICDE 2008).
//!
//! The paper's design deliberately mixes three classes of primitives, and the
//! relative costs between them are what the whole evaluation hinges on:
//!
//! * **Symmetric encryption** — AES-128 ([`aes`], [`modes`]) for data blocks
//!   (DEK) and, uniquely in Sharoes, for metadata objects (MEK).
//! * **Fast signatures** — ESIGN ([`esign`]) for DSK/DVK and MSK/MVK
//!   signing/verification, an order of magnitude faster than RSA.
//! * **Public-key encryption** — RSA-2048 ([`rsa`]) for user identities, the
//!   per-user superblock, group key distribution, Scheme-2 split points, and
//!   the PUBLIC/PUB-OPT baselines.
//!
//! Everything is implemented in this crate on top of an arbitrary-precision
//! integer core ([`bignum`], [`montgomery`], [`prime`]); no external crypto
//! dependencies are used.
//!
//! ## Example
//!
//! ```
//! use sharoes_crypto::{HmacDrbg, SymKey, SignatureScheme, generate_signing_pair};
//!
//! let mut rng = HmacDrbg::from_seed_u64(7);
//! // DEK: encrypt a data block.
//! let dek = SymKey::random(&mut rng);
//! let sealed = dek.seal(&mut rng, b"quarterly-report.txt contents");
//! assert_eq!(dek.open(&sealed).unwrap(), b"quarterly-report.txt contents");
//!
//! // DSK/DVK: sign the block so readers can tell writers from forgers.
//! let (dsk, dvk) = generate_signing_pair(SignatureScheme::Esign, 768, &mut rng).unwrap();
//! let sig = dsk.sign(&mut rng, &sealed);
//! assert!(dvk.verify(&sealed, &sig).is_ok());
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod digest;
pub mod drbg;
pub mod encoding;
pub mod error;
pub mod esign;
pub mod hmac;
pub mod keys;
pub mod md5;
pub mod modes;
pub mod montgomery;
pub mod prime;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use aes::Aes128;
pub use bignum::BigUint;
pub use digest::Digest;
pub use drbg::{HmacDrbg, RandomSource, SystemRandom};
pub use error::CryptoError;
pub use esign::{EsignPrivateKey, EsignPublicKey, DEFAULT_ESIGN_BITS};
pub use hmac::{ct_eq, hmac_sha256};
pub use keys::{generate_signing_pair, SignatureScheme, SigningKey, SymKey, VerifyKey};
pub use rsa::{RsaPrivateKey, RsaPublicKey, DEFAULT_RSA_BITS};
pub use sha256::Sha256;
