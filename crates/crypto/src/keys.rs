//! Key abstractions used by the Sharoes layers above.
//!
//! * [`SymKey`] — a 128-bit AES key: the DEK (data encryption key) and MEK
//!   (metadata encryption key) of the paper.
//! * [`SigningKey`] / [`VerifyKey`] — scheme-agnostic signing pairs: the
//!   DSK/DVK (data) and MSK/MVK (metadata) of the paper. ESIGN by default
//!   (paper footnote 3), RSA selectable for ablation A3.

use crate::aes::Aes128;
use crate::drbg::RandomSource;
use crate::encoding::{put_bytes, put_u8, Reader};
use crate::error::CryptoError;
use crate::esign::{EsignPrivateKey, EsignPublicKey};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};

/// A 128-bit symmetric key (AES-128).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SymKey(pub [u8; 16]);

impl SymKey {
    /// Generates a fresh random key.
    pub fn random<R: RandomSource + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; 16];
        rng.fill_bytes(&mut k);
        SymKey(k)
    }

    /// Builds a key from exactly 16 bytes.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != 16 {
            return Err(CryptoError::MalformedKey("SymKey must be 16 bytes"));
        }
        let mut k = [0u8; 16];
        k.copy_from_slice(bytes);
        Ok(SymKey(k))
    }

    /// Derives a key from the leading 16 bytes of an HMAC output.
    ///
    /// This is the paper's `H_DEKthis(name)` construction for exec-only
    /// directory rows (§III-A).
    pub fn derive(parent: &SymKey, label: &[u8]) -> Self {
        let mac = crate::hmac::hmac_sha256(&parent.0, label);
        let mut k = [0u8; 16];
        k.copy_from_slice(&mac[..16]);
        SymKey(k)
    }

    /// The expanded AES cipher for this key.
    pub fn cipher(&self) -> Aes128 {
        Aes128::new(&self.0)
    }

    /// Seals a plaintext with AES-CTR (`iv || ciphertext`).
    pub fn seal<R: RandomSource + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        crate::modes::ctr_seal(&self.cipher(), rng, plaintext)
    }

    /// Opens a blob produced by [`SymKey::seal`].
    pub fn open(&self, blob: &[u8]) -> Result<Vec<u8>, CryptoError> {
        crate::modes::ctr_open(&self.cipher(), blob)
    }
}

impl std::fmt::Debug for SymKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key bytes.
        write!(f, "SymKey(****)")
    }
}

/// Which asymmetric signature scheme backs a signing pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SignatureScheme {
    /// ESIGN over `n = p²q` — the paper's fast default.
    Esign,
    /// RSA PKCS#1 v1.5 — what most related systems use.
    Rsa,
}

impl SignatureScheme {
    fn tag(self) -> u8 {
        match self {
            SignatureScheme::Esign => 1,
            SignatureScheme::Rsa => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CryptoError> {
        match tag {
            1 => Ok(SignatureScheme::Esign),
            2 => Ok(SignatureScheme::Rsa),
            _ => Err(CryptoError::MalformedKey("unknown signature scheme tag")),
        }
    }
}

/// A signing key (paper: DSK for data, MSK for metadata).
#[derive(Clone, Debug)]
pub enum SigningKey {
    /// ESIGN private key.
    Esign(EsignPrivateKey),
    /// RSA private key.
    Rsa(RsaPrivateKey),
}

/// A verification key (paper: DVK for data, MVK for metadata).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyKey {
    /// ESIGN public key.
    Esign(EsignPublicKey),
    /// RSA public key.
    Rsa(RsaPublicKey),
}

/// Generates a signing/verification pair for `scheme`.
pub fn generate_signing_pair<R: RandomSource + ?Sized>(
    scheme: SignatureScheme,
    bits: usize,
    rng: &mut R,
) -> Result<(SigningKey, VerifyKey), CryptoError> {
    match scheme {
        SignatureScheme::Esign => {
            let sk = EsignPrivateKey::generate(bits, rng)?;
            let vk = sk.public_key().clone();
            Ok((SigningKey::Esign(sk), VerifyKey::Esign(vk)))
        }
        SignatureScheme::Rsa => {
            let sk = RsaPrivateKey::generate(bits, rng)?;
            let vk = sk.public_key().clone();
            Ok((SigningKey::Rsa(sk), VerifyKey::Rsa(vk)))
        }
    }
}

impl SigningKey {
    /// The scheme backing this key.
    pub fn scheme(&self) -> SignatureScheme {
        match self {
            SigningKey::Esign(_) => SignatureScheme::Esign,
            SigningKey::Rsa(_) => SignatureScheme::Rsa,
        }
    }

    /// Signs `msg`.
    pub fn sign<R: RandomSource + ?Sized>(&self, rng: &mut R, msg: &[u8]) -> Vec<u8> {
        match self {
            SigningKey::Esign(k) => k.sign(rng, msg),
            SigningKey::Rsa(k) => k.sign(msg),
        }
    }

    /// The matching verification key.
    pub fn verify_key(&self) -> VerifyKey {
        match self {
            SigningKey::Esign(k) => VerifyKey::Esign(k.public_key().clone()),
            SigningKey::Rsa(k) => VerifyKey::Rsa(k.public_key().clone()),
        }
    }

    /// Serializes with a scheme tag.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u8(&mut out, self.scheme().tag());
        match self {
            SigningKey::Esign(k) => put_bytes(&mut out, &k.to_bytes()),
            SigningKey::Rsa(k) => put_bytes(&mut out, &k.to_bytes()),
        }
        out
    }

    /// Parses a tagged serialized signing key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let scheme = SignatureScheme::from_tag(r.take_u8()?)?;
        let body = r.take_bytes()?;
        r.expect_end()?;
        Ok(match scheme {
            SignatureScheme::Esign => SigningKey::Esign(EsignPrivateKey::from_bytes(body)?),
            SignatureScheme::Rsa => SigningKey::Rsa(RsaPrivateKey::from_bytes(body)?),
        })
    }
}

impl VerifyKey {
    /// The scheme backing this key.
    pub fn scheme(&self) -> SignatureScheme {
        match self {
            VerifyKey::Esign(_) => SignatureScheme::Esign,
            VerifyKey::Rsa(_) => SignatureScheme::Rsa,
        }
    }

    /// Verifies `signature` over `msg`.
    pub fn verify(&self, msg: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        match self {
            VerifyKey::Esign(k) => k.verify(msg, signature),
            VerifyKey::Rsa(k) => k.verify(msg, signature),
        }
    }

    /// Serializes with a scheme tag.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u8(&mut out, self.scheme().tag());
        match self {
            VerifyKey::Esign(k) => put_bytes(&mut out, &k.to_bytes()),
            VerifyKey::Rsa(k) => put_bytes(&mut out, &k.to_bytes()),
        }
        out
    }

    /// Parses a tagged serialized verification key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let scheme = SignatureScheme::from_tag(r.take_u8()?)?;
        let body = r.take_bytes()?;
        r.expect_end()?;
        Ok(match scheme {
            SignatureScheme::Esign => VerifyKey::Esign(EsignPublicKey::from_bytes(body)?),
            SignatureScheme::Rsa => VerifyKey::Rsa(RsaPublicKey::from_bytes(body)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    #[test]
    fn symkey_seal_open() {
        let mut rng = HmacDrbg::from_seed_u64(1);
        let key = SymKey::random(&mut rng);
        let blob = key.seal(&mut rng, b"file contents");
        assert_eq!(key.open(&blob).unwrap(), b"file contents");
        let other = SymKey::random(&mut rng);
        assert_ne!(other.open(&blob).unwrap(), b"file contents");
    }

    #[test]
    fn symkey_from_slice_validation() {
        assert!(SymKey::from_slice(&[0u8; 16]).is_ok());
        assert!(SymKey::from_slice(&[0u8; 15]).is_err());
        assert!(SymKey::from_slice(&[0u8; 17]).is_err());
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let parent = SymKey([9u8; 16]);
        let a = SymKey::derive(&parent, b"file-a");
        let b = SymKey::derive(&parent, b"file-a");
        let c = SymKey::derive(&parent, b"file-b");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let other_parent = SymKey([8u8; 16]);
        assert_ne!(SymKey::derive(&other_parent, b"file-a"), a);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = SymKey([0x42; 16]);
        assert_eq!(format!("{key:?}"), "SymKey(****)");
    }

    #[test]
    fn signing_pair_roundtrip_both_schemes() {
        let mut rng = HmacDrbg::from_seed_u64(2);
        for (scheme, bits) in [(SignatureScheme::Esign, 768), (SignatureScheme::Rsa, 512)] {
            let (sk, vk) = generate_signing_pair(scheme, bits, &mut rng).unwrap();
            assert_eq!(sk.scheme(), scheme);
            assert_eq!(vk.scheme(), scheme);
            let sig = sk.sign(&mut rng, b"payload");
            vk.verify(b"payload", &sig).unwrap();
            assert!(vk.verify(b"other", &sig).is_err());
            assert_eq!(sk.verify_key(), vk);
        }
    }

    #[test]
    fn tagged_serialization_roundtrip() {
        let mut rng = HmacDrbg::from_seed_u64(3);
        let (sk, vk) = generate_signing_pair(SignatureScheme::Esign, 768, &mut rng).unwrap();
        let sk2 = SigningKey::from_bytes(&sk.to_bytes()).unwrap();
        let vk2 = VerifyKey::from_bytes(&vk.to_bytes()).unwrap();
        let sig = sk2.sign(&mut rng, b"x");
        vk2.verify(b"x", &sig).unwrap();
        assert!(SigningKey::from_bytes(&[9, 0, 0, 0, 0]).is_err());
        assert!(VerifyKey::from_bytes(&[]).is_err());
    }
}
