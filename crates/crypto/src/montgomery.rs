//! Montgomery-form modular arithmetic for odd moduli.
//!
//! All RSA and ESIGN exponentiations route through [`MontgomeryCtx`], which
//! implements the CIOS (coarsely integrated operand scanning) multiplication
//! with 64-bit limbs and a fixed 4-bit window exponentiation ladder.

use crate::bignum::BigUint;

/// Precomputed state for arithmetic modulo a fixed odd modulus.
pub struct MontgomeryCtx {
    modulus: BigUint,
    /// Modulus limbs padded to `k` entries.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64 k)`, used to enter Montgomery form.
    rr: Vec<u64>,
    /// `R mod n`: the Montgomery representation of one.
    r1: Vec<u64>,
    /// Number of limbs.
    k: usize,
}

impl MontgomeryCtx {
    /// Creates a context for the given odd modulus.
    ///
    /// # Panics
    /// Panics if `modulus` is even or < 3.
    pub fn new(modulus: BigUint) -> Self {
        assert!(modulus.is_odd(), "Montgomery modulus must be odd");
        assert!(modulus.bit_len() >= 2, "Montgomery modulus must be >= 3");
        let k = modulus.limbs.len();
        let mut n = modulus.limbs.clone();
        n.resize(k, 0);

        let n0inv = neg_inv_u64(n[0]);

        // R mod n and R^2 mod n via BigUint division (setup only, not hot).
        let r = BigUint::one().shl(64 * k);
        let r1_big = r.rem(&modulus);
        let rr_big = r1_big.mul(&r1_big).rem(&modulus);
        let mut r1 = r1_big.limbs.clone();
        r1.resize(k, 0);
        let mut rr = rr_big.limbs.clone();
        rr.resize(k, 0);

        MontgomeryCtx { modulus, n, n0inv, rr, r1, k }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod n`.
    ///
    /// Operands are `k`-limb little-endian vectors, already reduced mod n.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut t = vec![0u64; k + 2];

        for &ai in a.iter().take(k) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let cur = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = t[k + 1].wrapping_add((cur >> 64) as u64);

            // m = t[0] * n0inv mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0inv);
            let mut carry = {
                let cur = t[0] as u128 + m as u128 * self.n[0] as u128;
                cur >> 64
            };
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }

        // Final conditional subtraction: t may be in [0, 2n).
        let mut out = t[..k].to_vec();
        if t[k] != 0 || ge(&out, &self.n) {
            sub_in_place(&mut out, &self.n, t[k]);
        }
        out
    }

    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let reduced = a.rem(&self.modulus);
        let mut limbs = reduced.limbs.clone();
        limbs.resize(self.k, 0);
        self.mont_mul(&limbs, &self.rr)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// `(a * b) mod n`.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` with a fixed 4-bit window.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let bm = self.to_mont(base);

        // Precompute bm^0 .. bm^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        table.push(bm.clone());
        for i in 2..16 {
            table.push(self.mont_mul(&table[i - 1], &bm));
        }

        let bits = exp.bit_len();
        let top_window = (bits - 1) / 4; // index of the most significant window
        let mut acc = table[window_at(exp, top_window)].clone();
        for w in (0..top_window).rev() {
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let idx = window_at(exp, w);
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Extracts the `w`-th 4-bit window (little-endian window order).
fn window_at(exp: &BigUint, w: usize) -> usize {
    let bit = w * 4;
    let mut v = 0usize;
    for i in 0..4 {
        if exp.bit(bit + i) {
            v |= 1 << i;
        }
    }
    v
}

/// `-a^{-1} mod 2^64` for odd `a`, by Newton iteration.
fn neg_inv_u64(a: u64) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut inv = a; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(inv)));
    }
    debug_assert_eq!(a.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b`, where the logical value of a includes `extra * 2^(64 len)`.
fn sub_in_place(a: &mut [u64], b: &[u64], extra: u64) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert!(extra >= borrow || extra == 0 && borrow == 0);
    let _ = extra;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn neg_inv_correct() {
        for a in [1u64, 3, 5, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = neg_inv_u64(a);
            // a * (-a^-1) == -1 mod 2^64
            assert_eq!(a.wrapping_mul(ninv), u64::MAX, "a={a:#x}");
        }
    }

    #[test]
    fn pow_matches_naive_small() {
        let modulus = n(1_000_003); // odd
        let ctx = MontgomeryCtx::new(modulus.clone());
        for (b, e) in [(2u64, 10u64), (3, 0), (12345, 67), (999_999, 3), (7, 1_000_000)] {
            let expected = naive_pow(b, e, 1_000_003);
            assert_eq!(ctx.pow(&n(b), &n(e)), n(expected), "b={b} e={e}");
        }
    }

    fn naive_pow(mut b: u64, mut e: u64, m: u64) -> u64 {
        let mut r = 1u128;
        let mut bb = b as u128 % m as u128;
        while e > 0 {
            if e & 1 == 1 {
                r = r * bb % m as u128;
            }
            bb = bb * bb % m as u128;
            e >>= 1;
        }
        b = r as u64;
        b
    }

    #[test]
    fn pow_multi_limb_fermat() {
        // p = 2^127 - 1 is a Mersenne prime; check Fermat's little theorem.
        let p = BigUint::one().shl(127).sub(&BigUint::one());
        let ctx = MontgomeryCtx::new(p.clone());
        let a = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let res = ctx.pow(&a, &p.sub(&BigUint::one()));
        assert_eq!(res, BigUint::one());
    }

    #[test]
    fn mul_mod_matches_plain() {
        let m = BigUint::from_hex("ffffffffffffffffffffffffffffff61").unwrap(); // odd
        let ctx = MontgomeryCtx::new(m.clone());
        let a = BigUint::from_hex("deadbeefcafebabe1122334455667788").unwrap();
        let b = BigUint::from_hex("aabbccddeeff00112233445566778899").unwrap();
        assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let m = n(97);
        let ctx = MontgomeryCtx::new(m);
        assert_eq!(ctx.pow(&n(12), &BigUint::zero()), BigUint::one());
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(n(100));
    }
}
