//! RSA with PKCS#1 v1.5 padding for encryption and signatures.
//!
//! The paper's prototype uses 2048-bit RSA (per NIST SP 800-78) for user and
//! group identity keys, the per-user superblock, Scheme-2 split points, and —
//! in the PUBLIC/PUB-OPT baselines — metadata encryption. Decryption and
//! signing use the CRT representation.

use crate::bignum::BigUint;
use crate::drbg::RandomSource;
use crate::encoding::{put_bytes, Reader};
use crate::error::CryptoError;
use crate::montgomery::MontgomeryCtx;
use crate::prime::generate_prime;
use crate::sha256::Sha256;

/// Default key size matching the paper's evaluation setup.
pub const DEFAULT_RSA_BITS: usize = 2048;

/// Minimum PKCS#1 v1.5 overhead (3 marker bytes + 8 bytes of padding).
const PKCS1_OVERHEAD: usize = 11;

/// Digest prefix for signatures (stands in for the ASN.1 DigestInfo header).
const SIG_PREFIX: &[u8] = b"SHAROES:SHA-256:";

/// An RSA public key `(n, e)`.
#[derive(Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    /// Modulus length in bytes.
    k: usize,
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
}

impl std::fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaPublicKey({} bits)", self.n.bit_len())
    }
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        write!(f, "RsaPrivateKey({} bits)", self.public.n.bit_len())
    }
}

impl RsaPublicKey {
    /// Modulus length in bytes; every ciphertext/signature block is this long.
    pub fn modulus_len(&self) -> usize {
        self.k
    }

    /// Modulus bit length.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Maximum plaintext bytes for a single PKCS#1 v1.5 block.
    pub fn max_plaintext_len(&self) -> usize {
        self.k - PKCS1_OVERHEAD
    }

    fn raw(&self, m: &BigUint) -> BigUint {
        MontgomeryCtx::new(self.n.clone()).pow(m, &self.e)
    }

    /// PKCS#1 v1.5 type-2 encryption of a single block.
    pub fn encrypt<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        msg: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if msg.len() > self.max_plaintext_len() {
            return Err(CryptoError::MessageTooLong);
        }
        let mut em = Vec::with_capacity(self.k);
        em.push(0x00);
        em.push(0x02);
        let pad_len = self.k - 3 - msg.len();
        let mut pad = vec![0u8; pad_len];
        rng.fill_bytes(&mut pad);
        for b in pad.iter_mut() {
            // Padding bytes must be nonzero.
            if *b == 0 {
                *b = 0xA5;
            }
        }
        em.extend_from_slice(&pad);
        em.push(0x00);
        em.extend_from_slice(msg);
        let m = BigUint::from_bytes_be(&em);
        let c = self.raw(&m);
        Ok(c.to_bytes_be_padded(self.k).expect("c < n fits in k bytes"))
    }

    /// Encrypts an arbitrary-length blob by chunking into PKCS#1 blocks.
    ///
    /// This is exactly what the PUBLIC baseline does to whole metadata
    /// objects — the cost scales with blob size, which is why the paper's
    /// PUBLIC list phase is so slow.
    pub fn encrypt_blob<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        blob: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let chunk = self.max_plaintext_len();
        let mut out = Vec::with_capacity(blob.len().div_ceil(chunk.max(1)) * self.k);
        if blob.is_empty() {
            out.extend_from_slice(&self.encrypt(rng, &[])?);
            return Ok(out);
        }
        for piece in blob.chunks(chunk) {
            out.extend_from_slice(&self.encrypt(rng, piece)?);
        }
        Ok(out)
    }

    /// Verifies a PKCS#1 v1.5 signature over `msg`.
    pub fn verify(&self, msg: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        if signature.len() != self.k {
            return Err(CryptoError::SignatureInvalid);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_ref(&self.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::SignatureInvalid);
        }
        let em = self.raw(&s).to_bytes_be_padded(self.k).ok_or(CryptoError::SignatureInvalid)?;
        let expected = signature_em(&self.n, msg);
        if crate::hmac::ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::SignatureInvalid)
        }
    }

    /// Serializes the public key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, &self.n.to_bytes_be());
        put_bytes(&mut out, &self.e.to_bytes_be());
        out
    }

    /// Parses a serialized public key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let n = BigUint::from_bytes_be(r.take_bytes()?);
        let e = BigUint::from_bytes_be(r.take_bytes()?);
        r.expect_end()?;
        if n.bit_len() < 32 || e.is_zero() || e.is_one() {
            return Err(CryptoError::MalformedKey("implausible RSA public key"));
        }
        let k = n.bit_len().div_ceil(8);
        Ok(RsaPublicKey { n, e, k })
    }
}

/// Builds the padded PKCS#1 v1.5 encoded message for signing.
fn signature_em(n: &BigUint, msg: &[u8]) -> Vec<u8> {
    let k = n.bit_len().div_ceil(8);
    let digest = Sha256::digest(msg);
    let t_len = SIG_PREFIX.len() + digest.len();
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xFFu8, k - 3 - t_len));
    em.push(0x00);
    em.extend_from_slice(SIG_PREFIX);
    em.extend_from_slice(&digest);
    em
}

impl RsaPrivateKey {
    /// Generates a fresh key pair with public exponent 65537.
    pub fn generate<R: RandomSource + ?Sized>(
        bits: usize,
        rng: &mut R,
    ) -> Result<Self, CryptoError> {
        assert!(bits >= 128, "RSA key too small: {bits} bits");
        let e = BigUint::from_u64(65537);
        for _ in 0..16 {
            let p = generate_prime(bits / 2, rng)?;
            let q = generate_prime(bits - bits / 2, rng)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            let Some(d) = e.mod_inv(&phi) else {
                continue; // gcd(e, phi) != 1, rare
            };
            let dp = d.rem(&p1);
            let dq = d.rem(&q1);
            let Some(qinv) = q.mod_inv(&p) else {
                continue;
            };
            let (p, q) = (p, q);
            let k = n.bit_len().div_ceil(8);
            return Ok(RsaPrivateKey { public: RsaPublicKey { n, e, k }, d, p, q, dp, dq, qinv });
        }
        Err(CryptoError::KeyGeneration("RSA keygen retries exhausted"))
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// CRT private-key operation `c^d mod n`.
    fn raw(&self, c: &BigUint) -> BigUint {
        let m1 = MontgomeryCtx::new(self.p.clone()).pow(c, &self.dp);
        let m2 = MontgomeryCtx::new(self.q.clone()).pow(c, &self.dq);
        // h = qinv * (m1 - m2) mod p
        let diff = m1.sub_mod(&m2.rem(&self.p), &self.p);
        let h = self.qinv.mul_mod(&diff, &self.p);
        m2.add(&h.mul(&self.q))
    }

    /// PKCS#1 v1.5 type-2 decryption of a single block.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.k;
        if ciphertext.len() != k {
            return Err(CryptoError::InvalidCiphertext("RSA block length mismatch"));
        }
        let c = BigUint::from_bytes_be(ciphertext);
        if c.cmp_ref(&self.public.n) != std::cmp::Ordering::Less {
            return Err(CryptoError::InvalidCiphertext("RSA ciphertext >= modulus"));
        }
        let em = self
            .raw(&c)
            .to_bytes_be_padded(k)
            .ok_or(CryptoError::InvalidCiphertext("RSA decrypt overflow"))?;
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::InvalidPadding);
        }
        let sep = em[2..].iter().position(|&b| b == 0).ok_or(CryptoError::InvalidPadding)?;
        if sep < 8 {
            return Err(CryptoError::InvalidPadding); // padding too short
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// Decrypts a blob produced by [`RsaPublicKey::encrypt_blob`].
    pub fn decrypt_blob(&self, blob: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.k;
        if blob.is_empty() || !blob.len().is_multiple_of(k) {
            return Err(CryptoError::InvalidCiphertext("RSA blob length mismatch"));
        }
        let mut out = Vec::with_capacity(blob.len());
        for chunk in blob.chunks(k) {
            out.extend_from_slice(&self.decrypt(chunk)?);
        }
        Ok(out)
    }

    /// PKCS#1 v1.5 signature over `msg` (SHA-256).
    pub fn sign(&self, msg: &[u8]) -> Vec<u8> {
        let em = signature_em(&self.public.n, msg);
        let m = BigUint::from_bytes_be(&em);
        self.raw(&m).to_bytes_be_padded(self.public.k).expect("signature fits in k bytes")
    }

    /// Serializes the private key (all CRT components).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, &self.public.n.to_bytes_be());
        put_bytes(&mut out, &self.public.e.to_bytes_be());
        put_bytes(&mut out, &self.d.to_bytes_be());
        put_bytes(&mut out, &self.p.to_bytes_be());
        put_bytes(&mut out, &self.q.to_bytes_be());
        put_bytes(&mut out, &self.dp.to_bytes_be());
        put_bytes(&mut out, &self.dq.to_bytes_be());
        put_bytes(&mut out, &self.qinv.to_bytes_be());
        out
    }

    /// Parses a serialized private key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let n = BigUint::from_bytes_be(r.take_bytes()?);
        let e = BigUint::from_bytes_be(r.take_bytes()?);
        let d = BigUint::from_bytes_be(r.take_bytes()?);
        let p = BigUint::from_bytes_be(r.take_bytes()?);
        let q = BigUint::from_bytes_be(r.take_bytes()?);
        let dp = BigUint::from_bytes_be(r.take_bytes()?);
        let dq = BigUint::from_bytes_be(r.take_bytes()?);
        let qinv = BigUint::from_bytes_be(r.take_bytes()?);
        r.expect_end()?;
        if p.mul(&q) != n {
            return Err(CryptoError::MalformedKey("RSA n != p*q"));
        }
        let k = n.bit_len().div_ceil(8);
        Ok(RsaPrivateKey { public: RsaPublicKey { n, e, k }, d, p, q, dp, dq, qinv })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    /// Small test key so debug runs stay quick; generated deterministically.
    fn test_key() -> RsaPrivateKey {
        use std::sync::OnceLock;
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            RsaPrivateKey::generate(512, &mut HmacDrbg::from_seed_u64(0xDEADBEEF)).unwrap()
        })
        .clone()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(1);
        for msg in [&b""[..], b"x", b"hello rsa world", &[0u8; 53]] {
            let ct = key.public_key().encrypt(&mut rng, msg).unwrap();
            assert_eq!(ct.len(), key.public_key().modulus_len());
            assert_eq!(key.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn message_too_long_rejected() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(2);
        let too_long = vec![1u8; key.public_key().max_plaintext_len() + 1];
        assert_eq!(key.public_key().encrypt(&mut rng, &too_long), Err(CryptoError::MessageTooLong));
    }

    #[test]
    fn blob_roundtrip_multiple_chunks() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(3);
        let blob: Vec<u8> = (0..700u32).map(|i| (i % 251) as u8).collect();
        let ct = key.public_key().encrypt_blob(&mut rng, &blob).unwrap();
        assert!(ct.len() > blob.len());
        assert_eq!(ct.len() % key.public_key().modulus_len(), 0);
        assert_eq!(key.decrypt_blob(&ct).unwrap(), blob);
        // Empty blob round-trips too.
        let ct = key.public_key().encrypt_blob(&mut rng, &[]).unwrap();
        assert_eq!(key.decrypt_blob(&ct).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let sig = key.sign(b"metadata object v1");
        key.public_key().verify(b"metadata object v1", &sig).unwrap();
        assert!(key.public_key().verify(b"metadata object v2", &sig).is_err());
        let mut bad = sig.clone();
        bad[10] ^= 1;
        assert!(key.public_key().verify(b"metadata object v1", &bad).is_err());
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(4);
        let ct = key.public_key().encrypt(&mut rng, b"secret").unwrap();
        let mut bad = ct.clone();
        bad[0] ^= 0x80;
        // Either padding fails or the plaintext changes.
        match key.decrypt(&bad) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"secret"),
        }
    }

    #[test]
    fn key_serialization_roundtrip() {
        let key = test_key();
        let pub_bytes = key.public_key().to_bytes();
        let parsed = RsaPublicKey::from_bytes(&pub_bytes).unwrap();
        assert_eq!(&parsed, key.public_key());

        let priv_bytes = key.to_bytes();
        let parsed = RsaPrivateKey::from_bytes(&priv_bytes).unwrap();
        let mut rng = HmacDrbg::from_seed_u64(5);
        let ct = key.public_key().encrypt(&mut rng, b"roundtrip").unwrap();
        assert_eq!(parsed.decrypt(&ct).unwrap(), b"roundtrip");
    }

    #[test]
    fn corrupt_key_material_rejected() {
        assert!(RsaPublicKey::from_bytes(b"garbage").is_err());
        let key = test_key();
        let mut bytes = key.to_bytes();
        bytes[6] ^= 0xFF; // perturb n so n != p*q
        assert!(RsaPrivateKey::from_bytes(&bytes).is_err());
    }
}
