//! HMAC (RFC 2104), generic over the [`Digest`] trait.
//!
//! Sharoes uses HMAC-SHA-256 both as the keyed hash that derives exec-only
//! directory-row keys from entry names (paper §III-A: "a keyed hash function
//! like MD5 or SHA1 with DEK_this as the key") and inside the deterministic
//! DRBG.

use crate::digest::Digest;
use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// Computes `HMAC_D(key, message)`.
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let mut key_block = vec![0u8; D::BLOCK_LEN];
    if key.len() > D::BLOCK_LEN {
        let hashed = D::hash(key);
        key_block[..hashed.len()].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = D::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_hash = inner.finalize_vec();

    let mut outer = D::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize_vec()
}

/// HMAC-SHA-256 returning a fixed array.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let v = hmac::<Sha256>(key, message);
    let mut out = [0u8; 32];
    out.copy_from_slice(&v);
    out
}

/// HMAC-SHA-1 returning a fixed array (paper-fidelity option).
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; 20] {
    let v = hmac::<Sha1>(key, message);
    let mut out = [0u8; 20];
    out.copy_from_slice(&v);
    out
}

/// HMAC-MD5 returning a fixed array (paper-fidelity option; broken, unused).
pub fn hmac_md5(key: &[u8], message: &[u8]) -> [u8; 16] {
    let v = hmac::<Md5>(key, message);
    let mut out = [0u8; 16];
    out.copy_from_slice(&v);
    out
}

/// Constant-time byte-slice equality, for MAC comparisons.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&out), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&out), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_long_key() {
        // Key longer than block size gets hashed first.
        let key = [0xaau8; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&out), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn rfc2202_hmac_sha1() {
        let key = [0x0bu8; 20];
        assert_eq!(hex(&hmac_sha1(&key, b"Hi There")), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_hmac_md5() {
        assert_eq!(
            hex(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"Same"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
