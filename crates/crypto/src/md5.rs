//! MD5 (RFC 1321).
//!
//! Present only because the paper names MD5 as one keyed-hash option for
//! exec-only row keys. It is cryptographically broken and Sharoes never uses
//! it by default.

use crate::digest::Digest;

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 state.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Md5 {
    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let out = <Self as Digest>::hash(data);
        let mut arr = [0u8; 16];
        arr.copy_from_slice(&out);
        arr
    }

    fn compress(&mut self, block: &[u8]) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]).rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }

    fn update_no_count(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "MD5";

    fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = data.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize_vec(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut pad = Vec::with_capacity(72);
        pad.push(0x80);
        let rem = (self.buf_len + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_len.to_le_bytes());
        self.update_no_count(&pad);
        let mut out = Vec::with_capacity(16);
        for s in self.state {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc1321_vectors() {
        assert_eq!(hex(&Md5::digest(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(&Md5::digest(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(&Md5::digest(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(hex(&Md5::digest(b"message digest")), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            hex(&Md5::digest(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 7) as u8).collect();
        let mut h = Md5::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_vec(), Md5::digest(&data).to_vec());
    }
}
