//! A minimal incremental-hash trait shared by SHA-256, SHA-1, and MD5.

/// An incremental cryptographic hash function.
pub trait Digest: Clone {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block length in bytes (needed by HMAC).
    const BLOCK_LEN: usize;
    /// Human-readable algorithm name.
    const NAME: &'static str;

    /// Fresh hash state.
    fn new() -> Self;
    /// Absorbs more message bytes.
    fn update(&mut self, data: &[u8]);
    /// Consumes the state and produces the digest.
    fn finalize_vec(self) -> Vec<u8>;

    /// One-shot digest of `data`.
    fn hash(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize_vec()
    }
}
