//! SHA-1 (FIPS 180-4).
//!
//! Included because the paper proposes MD5/SHA-1 as the keyed hash for
//! exec-only directory-row keys (§III-A). Sharoes defaults to HMAC-SHA-256;
//! SHA-1 is available for fidelity experiments and is NOT recommended for new
//! designs.

use crate::digest::Digest;

/// Incremental SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Sha1 {
    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let out = <Self as Digest>::hash(data);
        let mut arr = [0u8; 20];
        arr.copy_from_slice(&out);
        arr
    }

    fn compress(&mut self, block: &[u8]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }

    fn update_no_count(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;
    const NAME: &'static str = "SHA-1";

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = data.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize_vec(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut pad = Vec::with_capacity(72);
        pad.push(0x80);
        let rem = (self.buf_len + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_len.to_be_bytes());
        self.update_no_count(&pad);
        let mut out = Vec::with_capacity(20);
        for s in self.state {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_vec(), Sha1::digest(&data).to_vec());
    }
}
