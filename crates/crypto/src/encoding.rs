//! Minimal length-prefixed binary encoding for key serialization.
//!
//! The higher layers have their own wire codec in `sharoes-net`; this module
//! exists so key material can round-trip to bytes without pulling network
//! dependencies into the crypto crate.

use crate::error::CryptoError;

/// Appends a `u32` big-endian length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Appends a single byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a big-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Cursor over a byte slice with checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns an error unless the whole buffer has been consumed.
    pub fn expect_end(&self) -> Result<(), CryptoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CryptoError::MalformedKey("trailing bytes"))
        }
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CryptoError> {
        if self.remaining() < 1 {
            return Err(CryptoError::MalformedKey("truncated u8"));
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a big-endian u32.
    pub fn take_u32(&mut self) -> Result<u32, CryptoError> {
        if self.remaining() < 4 {
            return Err(CryptoError::MalformedKey("truncated u32"));
        }
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_be_bytes(b))
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CryptoError> {
        let len = self.take_u32()? as usize;
        if self.remaining() < len {
            return Err(CryptoError::MalformedKey("truncated byte string"));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEADBEEF);
        put_bytes(&mut out, b"hello");
        put_bytes(&mut out, b"");

        let mut r = Reader::new(&out);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.take_bytes().unwrap(), b"hello");
        assert_eq!(r.take_bytes().unwrap(), b"");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        out.truncate(out.len() - 1);
        let mut r = Reader::new(&out);
        assert!(r.take_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut out = Vec::new();
        put_u8(&mut out, 1);
        out.push(0xFF);
        let mut r = Reader::new(&out);
        r.take_u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
