//! AES-128 block cipher (FIPS 197).
//!
//! The paper's prototype follows NIST SP 800-78 and uses 128-bit AES for all
//! symmetric encryption (DEK/MEK). This implementation is byte-oriented
//! (SubBytes / ShiftRows / MixColumns); the S-box is derived from the GF(2^8)
//! inverse plus affine transform at first use rather than hard-coded, and is
//! pinned by the FIPS-197 known-answer tests below.

use std::sync::OnceLock;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // log/antilog tables over GF(2^8) with generator 3.
        let mut alog = [0u8; 256];
        let mut log = [0u8; 256];
        let mut x = 1u8;
        for (i, slot) in alog.iter_mut().enumerate().take(255) {
            *slot = x;
            log[x as usize] = i as u8;
            // multiply by generator 3 = x * 2 + x
            x = xtime(x) ^ x;
        }
        alog[255] = alog[0];

        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for b in 0..256usize {
            let inv = if b == 0 { 0 } else { alog[(255 - log[b] as usize) % 255] };
            let s = inv
                ^ inv.rotate_left(1)
                ^ inv.rotate_left(2)
                ^ inv.rotate_left(3)
                ^ inv.rotate_left(4)
                ^ 0x63;
            sbox[b] = s;
            inv_sbox[s as usize] = b as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// GF(2^8) multiplication.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let t = tables();
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block, &t.sbox);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block, &t.sbox);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        let t = tables();
        add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            inv_shift_rows(block);
            sub_bytes(block, &t.inv_sbox);
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        sub_bytes(block, &t.inv_sbox);
        add_round_key(block, &self.round_keys[0]);
    }
}

// State layout: state[r + 4c] is row r, column c (FIPS 197 column-major).
// Input bytes already arrive in that order: in[i] -> s[i % 4][i / 4].

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = sbox[*b as usize];
    }
}

#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row r is bytes state[r], state[r+4], state[r+8], state[r+12]; rotate left by r.
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    for r in 1..4 {
        let row = [state[r], state[r + 4], state[r + 8], state[r + 12]];
        for c in 0..4 {
            state[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse16(hex: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        for i in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_c() {
        let key = parse16("000102030405060708090a0b0c0d0e0f");
        let mut block = parse16("00112233445566778899aabbccddeeff");
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, parse16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block, parse16("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn sp800_38a_ecb_vectors() {
        let key = parse16("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes128::new(&key);
        let cases = [
            ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
            ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
            ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
        ];
        for (pt, ct) in cases {
            let mut block = parse16(pt);
            aes.encrypt_block(&mut block);
            assert_eq!(block, parse16(ct), "plaintext {pt}");
            aes.decrypt_block(&mut block);
            assert_eq!(block, parse16(pt));
        }
    }

    #[test]
    fn roundtrip_many_keys() {
        for seed in 0u8..16 {
            let key = [seed; 16];
            let aes = Aes128::new(&key);
            let original = [seed.wrapping_mul(3); 16];
            let mut block = original;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }
}
