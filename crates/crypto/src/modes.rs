//! Block-cipher modes of operation over AES-128: CTR and CBC/PKCS#7.
//!
//! Sharoes seals data and metadata blocks with AES-CTR and a random 16-byte
//! IV prepended to the ciphertext; integrity comes from the DSK/MSK signature
//! layer, matching the paper's split between encryption and signing.

use crate::aes::Aes128;
use crate::drbg::RandomSource;
use crate::error::CryptoError;

/// Applies AES-CTR keystream in place.
///
/// The 16-byte `iv` is the initial counter block; it is incremented as a
/// big-endian 128-bit integer per block.
pub fn ctr_xor(aes: &Aes128, iv: &[u8; 16], data: &mut [u8]) {
    let mut counter = *iv;
    for chunk in data.chunks_mut(16) {
        let mut keystream = counter;
        aes.encrypt_block(&mut keystream);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        increment_be(&mut counter);
    }
}

fn increment_be(counter: &mut [u8; 16]) {
    for b in counter.iter_mut().rev() {
        *b = b.wrapping_add(1);
        if *b != 0 {
            break;
        }
    }
}

/// Encrypts with AES-CTR, returning `iv || ciphertext`.
pub fn ctr_seal<R: RandomSource + ?Sized>(aes: &Aes128, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
    let mut iv = [0u8; 16];
    rng.fill_bytes(&mut iv);
    let mut out = Vec::with_capacity(16 + plaintext.len());
    out.extend_from_slice(&iv);
    out.extend_from_slice(plaintext);
    ctr_xor(aes, &iv, &mut out[16..]);
    out
}

/// Decrypts a blob produced by [`ctr_seal`].
pub fn ctr_open(aes: &Aes128, blob: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if blob.len() < 16 {
        return Err(CryptoError::InvalidCiphertext("CTR blob shorter than IV"));
    }
    let mut iv = [0u8; 16];
    iv.copy_from_slice(&blob[..16]);
    let mut out = blob[16..].to_vec();
    ctr_xor(aes, &iv, &mut out);
    Ok(out)
}

/// Encrypts with AES-CBC and PKCS#7 padding, returning `iv || ciphertext`.
pub fn cbc_seal<R: RandomSource + ?Sized>(aes: &Aes128, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
    let mut iv = [0u8; 16];
    rng.fill_bytes(&mut iv);

    let pad = 16 - plaintext.len() % 16;
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat_n(pad as u8, pad));

    let mut out = Vec::with_capacity(16 + data.len());
    out.extend_from_slice(&iv);
    let mut prev = iv;
    for chunk in data.chunks(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    out
}

/// Decrypts a blob produced by [`cbc_seal`], validating the PKCS#7 padding.
pub fn cbc_open(aes: &Aes128, blob: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if blob.len() < 32 || !blob.len().is_multiple_of(16) {
        return Err(CryptoError::InvalidCiphertext("CBC blob has bad length"));
    }
    let mut prev = [0u8; 16];
    prev.copy_from_slice(&blob[..16]);
    let mut out = Vec::with_capacity(blob.len() - 16);
    for chunk in blob[16..].chunks(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        let saved = block;
        aes.decrypt_block(&mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    let pad = *out.last().expect("non-empty by length check") as usize;
    if pad == 0 || pad > 16 || out.len() < pad {
        return Err(CryptoError::InvalidPadding);
    }
    if !out[out.len() - pad..].iter().all(|&b| b as usize == pad) {
        return Err(CryptoError::InvalidPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn parse16(hex: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn sp800_38a_ctr_vector() {
        let key = parse16("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = parse16("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
        let aes = Aes128::new(&key);
        let mut data = parse16("6bc1bee22e409f96e93d7e117393172a").to_vec();
        data.extend_from_slice(&parse16("ae2d8a571e03ac9c9eb76fac45af8e51"));
        ctr_xor(&aes, &iv, &mut data);
        assert_eq!(data[..16], parse16("874d6191b620e3261bef6864990db6ce"));
        assert_eq!(data[16..], parse16("9806f66b7970fdff8617187bb9fffdff"));
    }

    #[test]
    fn ctr_seal_roundtrip_all_lengths() {
        let aes = Aes128::new(&[7u8; 16]);
        let mut rng = HmacDrbg::from_seed_u64(1);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let blob = ctr_seal(&aes, &mut rng, &pt);
            assert_eq!(blob.len(), 16 + len);
            assert_eq!(ctr_open(&aes, &blob).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn ctr_short_blob_rejected() {
        let aes = Aes128::new(&[0u8; 16]);
        assert!(ctr_open(&aes, &[0u8; 15]).is_err());
    }

    #[test]
    fn counter_increment_carries() {
        let mut c = [0xffu8; 16];
        increment_be(&mut c);
        assert_eq!(c, [0u8; 16]);
        let mut c = [0u8; 16];
        c[15] = 0xff;
        increment_be(&mut c);
        assert_eq!(c[14], 1);
        assert_eq!(c[15], 0);
    }

    #[test]
    fn cbc_roundtrip_and_padding() {
        let aes = Aes128::new(&[3u8; 16]);
        let mut rng = HmacDrbg::from_seed_u64(2);
        for len in [0usize, 1, 15, 16, 17, 255] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let blob = cbc_seal(&aes, &mut rng, &pt);
            assert_eq!(blob.len() % 16, 0);
            assert_eq!(cbc_open(&aes, &blob).unwrap(), pt, "len={len}");
        }
    }

    #[test]
    fn cbc_tamper_detected_by_padding_or_garbage() {
        let aes = Aes128::new(&[3u8; 16]);
        let mut rng = HmacDrbg::from_seed_u64(3);
        let blob = cbc_seal(&aes, &mut rng, b"hello world");
        // Flipping the final byte perturbs padding with high probability; at
        // minimum the plaintext must change.
        let mut bad = blob.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        match cbc_open(&aes, &bad) {
            Err(_) => {}
            Ok(pt) => assert_ne!(pt, b"hello world"),
        }
    }

    #[test]
    fn wrong_key_garbles_ctr() {
        let aes = Aes128::new(&[1u8; 16]);
        let wrong = Aes128::new(&[2u8; 16]);
        let mut rng = HmacDrbg::from_seed_u64(4);
        let blob = ctr_seal(&aes, &mut rng, b"confidential metadata");
        let opened = ctr_open(&wrong, &blob).unwrap();
        assert_ne!(opened, b"confidential metadata");
    }
}
