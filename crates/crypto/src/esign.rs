//! ESIGN: fast digital signatures over moduli of the form `n = p²q`.
//!
//! The paper (footnote 3) points out that signing/verification does not need
//! RSA: "there are other techniques like ESIGN that are over an order of
//! magnitude faster". This module implements the classic ESIGN scheme
//! (Okamoto; TSH-ESIGN is the hash-strengthened variant in IEEE P1363):
//!
//! * **Key**: primes `p`, `q` of `k/3` bits, modulus `n = p²q`, small public
//!   exponent `e` (a power of two, here 32).
//! * **Sign**: pick random `r < pq`; compute `v = (y - r^e) mod n` where `y`
//!   places the message hash in the top bits; let `w = ceil(v / pq)` and
//!   `t = w · (e·r^(e-1))^(-1) mod p`; the signature is `s = r + t·p·q`.
//! * **Verify**: check that the top bits of `s^e mod n` equal the hash.
//!
//! Signing costs a handful of small exponentiations and one modular inverse
//! mod `p` instead of a full-width private exponentiation, which is why it is
//! roughly an order of magnitude faster than RSA signing at equal modulus
//! size (bench `crypto_micro` quantifies this on the current machine).

use crate::bignum::BigUint;
use crate::drbg::RandomSource;
use crate::encoding::{put_bytes, put_u32, Reader};
use crate::error::CryptoError;
use crate::montgomery::MontgomeryCtx;
use crate::prime::generate_prime;
use crate::sha256::Sha256;

/// Default modulus size; comparable to the paper's 2048-bit RSA setting.
pub const DEFAULT_ESIGN_BITS: usize = 2048;

/// Public exponent: a small power of two (the scheme requires `e >= 4`).
const E: u32 = 32;

/// ESIGN public key.
#[derive(Clone, PartialEq, Eq)]
pub struct EsignPublicKey {
    n: BigUint,
    e: u32,
    /// Bit position where the hash window starts in `s^e mod n`.
    shift: usize,
    /// Number of hash bits bound by a signature.
    hash_bits: usize,
}

/// ESIGN private key.
#[derive(Clone)]
pub struct EsignPrivateKey {
    public: EsignPublicKey,
    p: BigUint,
    q: BigUint,
    pq: BigUint,
}

impl std::fmt::Debug for EsignPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EsignPublicKey({} bits)", self.n.bit_len())
    }
}

impl std::fmt::Debug for EsignPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EsignPrivateKey({} bits)", self.public.n.bit_len())
    }
}

/// Derives the hash window parameters from a modulus and prime size.
fn window_params(n: &BigUint, prime_bits: usize) -> (usize, usize) {
    let shift = 2 * prime_bits + 2; // w1 < pq < 2^(2b) <= 2^shift
    let hash_bits = (n.bit_len() - shift).saturating_sub(8).min(256);
    (shift, hash_bits)
}

/// Maps a message to the integer `y` carrying its hash in the top window.
fn message_representative(msg: &[u8], shift: usize, hash_bits: usize) -> BigUint {
    let digest = Sha256::digest(msg);
    let mut h = BigUint::from_bytes_be(&digest);
    if hash_bits < 256 {
        h = h.shr(256 - hash_bits);
    }
    h.shl(shift)
}

impl EsignPublicKey {
    /// Modulus bit length.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Signature length in bytes.
    pub fn signature_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Verifies a signature over `msg`.
    pub fn verify(&self, msg: &[u8], signature: &[u8]) -> Result<(), CryptoError> {
        if signature.len() != self.signature_len() {
            return Err(CryptoError::SignatureInvalid);
        }
        let s = BigUint::from_bytes_be(signature);
        if s.cmp_ref(&self.n) != std::cmp::Ordering::Less || s.is_zero() {
            return Err(CryptoError::SignatureInvalid);
        }
        let u = MontgomeryCtx::new(self.n.clone()).pow(&s, &BigUint::from_u64(self.e as u64));
        let expected = message_representative(msg, self.shift, self.hash_bits);
        if u.shr(self.shift) == expected.shr(self.shift) {
            Ok(())
        } else {
            Err(CryptoError::SignatureInvalid)
        }
    }

    /// Serializes the public key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, &self.n.to_bytes_be());
        put_u32(&mut out, self.e);
        put_u32(&mut out, self.shift as u32);
        put_u32(&mut out, self.hash_bits as u32);
        out
    }

    /// Parses a serialized public key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let n = BigUint::from_bytes_be(r.take_bytes()?);
        let e = r.take_u32()?;
        let shift = r.take_u32()? as usize;
        let hash_bits = r.take_u32()? as usize;
        r.expect_end()?;
        if n.bit_len() < 64 || e < 4 || shift + hash_bits + 1 > n.bit_len() || hash_bits == 0 {
            return Err(CryptoError::MalformedKey("implausible ESIGN public key"));
        }
        Ok(EsignPublicKey { n, e, shift, hash_bits })
    }
}

impl EsignPrivateKey {
    /// Generates a fresh ESIGN key pair with roughly `bits`-bit modulus.
    pub fn generate<R: RandomSource + ?Sized>(
        bits: usize,
        rng: &mut R,
    ) -> Result<Self, CryptoError> {
        assert!(bits >= 192, "ESIGN key too small: {bits} bits");
        let b = bits / 3;
        for _ in 0..16 {
            let p = generate_prime(b, rng)?;
            let q = generate_prime(b, rng)?;
            if p == q {
                continue;
            }
            let pq = p.mul(&q);
            let n = p.square().mul(&q);
            let (shift, hash_bits) = window_params(&n, b);
            if hash_bits < 64 {
                continue; // not enough hash coverage; resample
            }
            return Ok(EsignPrivateKey {
                public: EsignPublicKey { n, e: E, shift, hash_bits },
                p,
                q,
                pq,
            });
        }
        Err(CryptoError::KeyGeneration("ESIGN keygen retries exhausted"))
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> &EsignPublicKey {
        &self.public
    }

    /// Signs `msg`.
    pub fn sign<R: RandomSource + ?Sized>(&self, rng: &mut R, msg: &[u8]) -> Vec<u8> {
        let pk = &self.public;
        let y = message_representative(msg, pk.shift, pk.hash_bits);
        let e_big = BigUint::from_u64(pk.e as u64);
        let e1_big = BigUint::from_u64(pk.e as u64 - 1);
        let ctx_n = MontgomeryCtx::new(pk.n.clone());
        let ctx_p = MontgomeryCtx::new(self.p.clone());

        loop {
            let r = BigUint::random_below(rng, &self.pq);
            if r.rem(&self.p).is_zero() {
                continue;
            }
            let re = ctx_n.pow(&r, &e_big);
            let v = y.sub_mod(&re, &pk.n);
            let (wq, wr) = v.div_rem(&self.pq);
            let w = if wr.is_zero() { wq } else { wq.add_u64(1) };

            // t = w * (e * r^(e-1))^{-1} mod p
            let re1 = ctx_p.pow(&r, &e1_big);
            let denom = re1.mul_u64(pk.e as u64).rem(&self.p);
            let Some(inv) = denom.mod_inv(&self.p) else {
                continue;
            };
            let t = w.rem(&self.p).mul_mod(&inv, &self.p);
            let s = r.add(&t.mul(&self.pq)).rem(&pk.n);
            debug_assert!(pk
                .verify(msg, &s.to_bytes_be_padded(pk.signature_len()).unwrap())
                .is_ok());
            return s
                .to_bytes_be_padded(pk.signature_len())
                .expect("s < n fits in signature length");
        }
    }

    /// Serializes the private key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_bytes(&mut out, &self.p.to_bytes_be());
        put_bytes(&mut out, &self.q.to_bytes_be());
        put_u32(&mut out, self.public.e);
        out
    }

    /// Parses a serialized private key and rebuilds the derived values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let p = BigUint::from_bytes_be(r.take_bytes()?);
        let q = BigUint::from_bytes_be(r.take_bytes()?);
        let e = r.take_u32()?;
        r.expect_end()?;
        if p.bit_len() < 32 || q.bit_len() < 32 || e < 4 {
            return Err(CryptoError::MalformedKey("implausible ESIGN private key"));
        }
        let pq = p.mul(&q);
        let n = p.square().mul(&q);
        let (shift, hash_bits) = window_params(&n, p.bit_len());
        Ok(EsignPrivateKey { public: EsignPublicKey { n, e, shift, hash_bits }, p, q, pq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;

    fn test_key() -> EsignPrivateKey {
        use std::sync::OnceLock;
        static KEY: OnceLock<EsignPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            EsignPrivateKey::generate(768, &mut HmacDrbg::from_seed_u64(0xE51611)).unwrap()
        })
        .clone()
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(1);
        for msg in [&b""[..], b"x", b"directory table v7", &[0xAB; 4096]] {
            let sig = key.sign(&mut rng, msg);
            assert_eq!(sig.len(), key.public_key().signature_len());
            key.public_key().verify(msg, &sig).unwrap();
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(2);
        let sig = key.sign(&mut rng, b"original");
        assert_eq!(key.public_key().verify(b"tampered", &sig), Err(CryptoError::SignatureInvalid));
    }

    #[test]
    fn corrupted_signature_rejected() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(3);
        let sig = key.sign(&mut rng, b"message");
        for i in [0usize, 10, 50] {
            let mut bad = sig.clone();
            bad[i] ^= 0x40;
            assert!(key.public_key().verify(b"message", &bad).is_err(), "byte {i}");
        }
        assert!(key.public_key().verify(b"message", &[]).is_err());
        let zeros = vec![0u8; sig.len()];
        assert!(key.public_key().verify(b"message", &zeros).is_err());
    }

    #[test]
    fn signatures_are_randomized_but_all_verify() {
        let key = test_key();
        let mut rng = HmacDrbg::from_seed_u64(4);
        let s1 = key.sign(&mut rng, b"same message");
        let s2 = key.sign(&mut rng, b"same message");
        assert_ne!(s1, s2, "ESIGN signing should be randomized");
        key.public_key().verify(b"same message", &s1).unwrap();
        key.public_key().verify(b"same message", &s2).unwrap();
    }

    #[test]
    fn serialization_roundtrip() {
        let key = test_key();
        let public = EsignPublicKey::from_bytes(&key.public_key().to_bytes()).unwrap();
        assert_eq!(&public, key.public_key());

        let private = EsignPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        let mut rng = HmacDrbg::from_seed_u64(5);
        let sig = private.sign(&mut rng, b"roundtrip");
        key.public_key().verify(b"roundtrip", &sig).unwrap();
    }

    #[test]
    fn malformed_keys_rejected() {
        assert!(EsignPublicKey::from_bytes(b"junk").is_err());
        assert!(EsignPrivateKey::from_bytes(b"junk").is_err());
    }
}
