//! Arbitrary-precision unsigned integers.
//!
//! This is the arithmetic substrate for the RSA and ESIGN implementations in
//! this crate. Limbs are 64-bit, stored little-endian, and values are kept
//! normalized (no trailing zero limbs), so the empty limb vector represents
//! zero.
//!
//! The implementation favours clarity and auditability over absolute speed:
//! schoolbook multiplication with a Karatsuba layer for large operands, Knuth
//! Algorithm D division, and binary extended GCD for modular inverses. Hot
//! modular exponentiation goes through [`crate::montgomery`] instead.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 64-bit limbs with no trailing zeros.
    pub(crate) limbs: Vec<u64>,
}

/// Operand size (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 24;

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single limb.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a u128.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint { limbs: vec![lo, hi] };
        n.normalize();
        n
    }

    /// Builds a value from little-endian limbs (will be normalized).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Interprets big-endian bytes as an unsigned integer.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Removes trailing zero limbs to restore the normalized representation.
    pub(crate) fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// True if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (zero → 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one, growing the representation if needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Returns the low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Returns `Some(v)` when the value fits in a u64.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Comparison, cheaper than constructing an `Ord` pair on hot paths.
    pub fn cmp_ref(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (a, b) =
            if self.limbs.len() >= other.limbs.len() { (self, other) } else { (other, self) };
        let mut limbs = Vec::with_capacity(a.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.limbs.len() {
            let bi = b.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.limbs[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        Self::from_limbs(limbs)
    }

    /// Adds a single limb.
    pub fn add_u64(&self, v: u64) -> Self {
        self.add(&BigUint::from_u64(v))
    }

    /// `self - other`; returns `None` when the result would be negative.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self.cmp_ref(other) == Ordering::Less {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            limbs.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(limbs))
    }

    /// `self - other`, panicking on underflow.
    pub fn sub(&self, other: &Self) -> Self {
        self.checked_sub(other).expect("BigUint::sub underflow: minuend smaller than subtrahend")
    }

    /// `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        if self.limbs.len() >= KARATSUBA_THRESHOLD && other.limbs.len() >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    fn mul_schoolbook(&self, other: &Self) -> Self {
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u128 + a as u128 * b as u128 + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u128 + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(limbs)
    }

    /// Karatsuba multiplication for large operands.
    fn mul_karatsuba(&self, other: &Self) -> Self {
        let half = self.limbs.len().min(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at(half);
        let (b0, b1) = other.split_at(half);

        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);

        // result = z2 << (2*half*64) + z1 << (half*64) + z0
        z2.shl_limbs(2 * half).add(&z1.shl_limbs(half)).add(&z0)
    }

    fn split_at(&self, limbs: usize) -> (Self, Self) {
        if limbs >= self.limbs.len() {
            return (self.clone(), Self::zero());
        }
        let lo = Self::from_limbs(self.limbs[..limbs].to_vec());
        let hi = Self::from_limbs(self.limbs[limbs..].to_vec());
        (lo, hi)
    }

    fn shl_limbs(&self, limbs: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; limbs];
        out.extend_from_slice(&self.limbs);
        Self::from_limbs(out)
    }

    /// Squares the value (`self * self`).
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Multiplies by a single limb.
    pub fn mul_u64(&self, v: u64) -> Self {
        if v == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = a as u128 * v as u128 + carry;
            limbs.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            limbs.push(carry as u64);
        }
        Self::from_limbs(limbs)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Self::from_limbs(limbs)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).copied().unwrap_or(0) << (64 - bit_shift);
                limbs.push(lo | hi);
            }
        }
        Self::from_limbs(limbs)
    }

    /// Quotient and remainder: `(self / divisor, self % divisor)`.
    ///
    /// Implements Knuth TAOCP vol. 2 Algorithm D with a normalization shift
    /// and the classic two-limb `qhat` estimate.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        match self.cmp_ref(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Self::from_u64(r));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 digits during the algorithm
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q_limbs = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current remainder.
            let numer = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numer / v_top as u128;
            let mut rhat = numer % v_top as u128;
            while qhat >> 64 != 0 || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-subtract: un[j..j+n+1] -= qhat * vn
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 + borrow;
                un[i + j] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;
            borrow = t >> 64;

            if borrow != 0 {
                // qhat was one too large: add v back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q_limbs[j] = qhat as u64;
        }

        let quotient = Self::from_limbs(q_limbs);
        let remainder = Self::from_limbs(un[..n].to_vec()).shr(shift);
        (quotient, remainder)
    }

    /// Division by a single limb, returning `(quotient, remainder)`.
    pub fn div_rem_u64(&self, divisor: u64) -> (Self, u64) {
        assert!(divisor != 0, "division by zero limb");
        let mut limbs = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            limbs[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (Self::from_limbs(limbs), rem as u64)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &Self) -> Self {
        self.div_rem(modulus).1
    }

    /// `(self * other) mod modulus` without Montgomery machinery.
    pub fn mul_mod(&self, other: &Self, modulus: &Self) -> Self {
        self.mul(other).rem(modulus)
    }

    /// `(self + other) mod modulus`; operands must already be reduced.
    pub fn add_mod(&self, other: &Self, modulus: &Self) -> Self {
        let s = self.add(other);
        if s.cmp_ref(modulus) == Ordering::Less {
            s
        } else {
            s.sub(modulus)
        }
    }

    /// `(self - other) mod modulus`; operands must already be reduced.
    pub fn sub_mod(&self, other: &Self, modulus: &Self) -> Self {
        if self.cmp_ref(other) == Ordering::Less {
            self.add(modulus).sub(other)
        } else {
            self.sub(other)
        }
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Delegates to Montgomery multiplication for odd moduli and falls back
    /// to binary square-and-multiply with trial division otherwise.
    pub fn mod_pow(&self, exp: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "mod_pow with zero modulus");
        if modulus.is_one() {
            return Self::zero();
        }
        if modulus.is_odd() {
            let ctx = crate::montgomery::MontgomeryCtx::new(modulus.clone());
            return ctx.pow(self, exp);
        }
        // Generic path (even modulus): plain square-and-multiply.
        let mut base = self.rem(modulus);
        let mut result = Self::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            if i + 1 < exp.bit_len() {
                base = base.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let a_tz = a.trailing_zeros();
        let b_tz = b.trailing_zeros();
        let common = a_tz.min(b_tz);
        a = a.shr(a_tz);
        b = b.shr(b_tz);
        loop {
            match a.cmp_ref(&b) {
                Ordering::Equal => break,
                Ordering::Greater => {
                    a = a.sub(&b);
                    a = a.shr(a.trailing_zeros());
                }
                Ordering::Less => {
                    b = b.sub(&a);
                    b = b.shr(b.trailing_zeros());
                }
            }
        }
        a.shl(common)
    }

    fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return i * 64 + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Modular inverse: `self^-1 mod modulus`, or `None` when not coprime.
    ///
    /// Uses the extended Euclidean algorithm on `BigUint` pairs, tracking the
    /// Bézout coefficient of `self` with an explicit sign.
    pub fn mod_inv(&self, modulus: &Self) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        let a = self.rem(modulus);
        if a.is_zero() {
            return None;
        }

        // Invariants: r0 = t0*a (mod m), r1 = t1*a (mod m)
        let mut r0 = modulus.clone();
        let mut r1 = a;
        let mut t0 = (Self::zero(), false); // (magnitude, negative?)
        let mut t1 = (Self::one(), false);

        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 (signed arithmetic on magnitudes)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = std::mem::replace(&mut r1, r);
            t0 = std::mem::replace(&mut t1, t2);
        }

        if !r0.is_one() {
            return None;
        }
        let (mag, neg) = t0;
        let mag = mag.rem(modulus);
        Some(if neg && !mag.is_zero() { modulus.sub(&mag) } else { mag })
    }

    /// Uniform random value in `[0, bound)` using the supplied generator.
    pub fn random_below<R: crate::drbg::RandomSource + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bit_len();
        let bytes = bits.div_ceil(8);
        let top_mask = if bits.is_multiple_of(8) { 0xFF } else { (1u8 << (bits % 8)) - 1 };
        let mut buf = vec![0u8; bytes];
        loop {
            rng.fill_bytes(&mut buf);
            buf[0] &= top_mask;
            let candidate = Self::from_bytes_be(&buf);
            if candidate.cmp_ref(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random value with exactly `bits` bits (top bit set).
    pub fn random_bits<R: crate::drbg::RandomSource + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0);
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        let mut n = Self::from_bytes_be(&buf);
        // Clear any excess high bits, then force the top bit.
        n = n.shr(0); // no-op, keeps normalization obvious
        let excess = bytes * 8 - bits;
        if excess > 0 {
            n = n.rem(&Self::one().shl(bits));
        }
        n.set_bit(bits - 1);
        n
    }

    /// Parses a hexadecimal string (no prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut i = 0;
        if s.len() % 2 == 1 {
            bytes.push(hex_val(s[0]));
            i = 1;
        }
        while i < s.len() {
            bytes.push(hex_val(s[i]) << 4 | hex_val(s[i + 1]));
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Hexadecimal rendering without prefix (zero → `"0"`).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:x}", b));
            } else {
                s.push_str(&format!("{:02x}", b));
            }
        }
        s
    }
}

fn hex_val(b: u8) -> u8 {
    match b {
        b'0'..=b'9' => b - b'0',
        b'a'..=b'f' => b - b'a' + 10,
        b'A'..=b'F' => b - b'A' + 10,
        _ => unreachable!("validated hex digit"),
    }
}

/// `(a_mag, a_neg) - (b_mag, b_neg)` in sign-magnitude form.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => match a.0.cmp_ref(&b.0) {
            Ordering::Less => (b.0.sub(&a.0), true),
            _ => (a.0.sub(&b.0), false),
        },
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => match b.0.cmp_ref(&a.0) {
            Ordering::Less => (a.0.sub(&b.0), true),
            _ => (b.0.sub(&a.0), false),
        },
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_ref(other)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BigUint::from_hex("0123456789abcdef0011223344556677889900").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        // Leading zeros are ignored on parse.
        let mut padded = vec![0u8; 5];
        padded.extend_from_slice(&bytes);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn padded_bytes() {
        let v = n(0xABCD);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0xAB, 0xCD]);
        assert!(v.to_bytes_be_padded(1).is_none());
        assert_eq!(BigUint::zero().to_bytes_be_padded(3).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn add_sub_with_carries() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = n(1);
        let s = a.add(&b);
        assert_eq!(s.limbs, vec![0, 0, 1]);
        assert_eq!(s.sub(&b), a);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_small() {
        assert_eq!(n(7).mul(&n(6)), n(42));
        assert_eq!(n(0).mul(&n(6)), BigUint::zero());
        let big = BigUint::from_limbs(vec![u64::MAX]);
        assert_eq!(big.mul(&big), BigUint::from_u128((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random limbs, large enough to hit Karatsuba.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let a = BigUint::from_limbs((0..40).map(|_| next()).collect());
        let b = BigUint::from_limbs((0..37).map(|_| next()).collect());
        assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn shifts() {
        let v = BigUint::from_hex("deadbeefcafebabe1122334455667788").unwrap();
        assert_eq!(v.shl(0), v);
        assert_eq!(v.shl(67).shr(67), v);
        assert_eq!(v.shr(v.bit_len()), BigUint::zero());
        assert_eq!(n(1).shl(64).limbs, vec![0, 1]);
    }

    #[test]
    fn div_rem_basics() {
        let (q, r) = n(100).div_rem(&n(7));
        assert_eq!(q, n(14));
        assert_eq!(r, n(2));
        let (q, r) = n(5).div_rem(&n(7));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, n(5));
        let (q, r) = n(7).div_rem(&n(7));
        assert_eq!(q, BigUint::one());
        assert_eq!(r, BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn div_rem_multi_limb_identity() {
        let a = BigUint::from_hex(
            "f123456789abcdef0011223344556677f123456789abcdef0011223344556677aabbccdd",
        )
        .unwrap();
        let b = BigUint::from_hex("deadbeefcafebabe1122334455667788").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r.cmp_ref(&b) == Ordering::Less);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn div_rem_triggers_addback() {
        // Crafted so qhat over-estimates: divisor with high limb 0x8000...,
        // dividend just below a multiple.
        let b = BigUint::from_limbs(vec![0, 0x8000_0000_0000_0000]);
        let a = b.mul(&BigUint::from_limbs(vec![u64::MAX, u64::MAX])).sub(&n(1));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_ref(&b) == Ordering::Less);
    }

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(n(2).mod_pow(&n(10), &n(1000)), n(24));
        assert_eq!(n(3).mod_pow(&n(0), &n(7)), n(1));
        assert_eq!(n(0).mod_pow(&n(5), &n(7)), BigUint::zero());
        // Fermat: 2^(p-1) = 1 mod p for prime p
        let p = n(1_000_000_007);
        assert_eq!(n(2).mod_pow(&p.sub(&n(1)), &p), n(1));
        // Even modulus path
        assert_eq!(n(3).mod_pow(&n(4), &n(16)), n(1));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(31)), n(1));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(48).gcd(&n(36)), n(12));
    }

    #[test]
    fn mod_inv_cases() {
        let inv = n(3).mod_inv(&n(7)).unwrap();
        assert_eq!(n(3).mul(&inv).rem(&n(7)), n(1));
        assert!(n(4).mod_inv(&n(8)).is_none()); // not coprime
        assert!(n(0).mod_inv(&n(7)).is_none());
        let m = BigUint::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff").unwrap();
        let a = BigUint::from_hex("deadbeef12345678").unwrap();
        let inv = a.mod_inv(&m).unwrap();
        assert_eq!(a.mul(&inv).rem(&m), BigUint::one());
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["1", "ff", "deadbeef", "123456789abcdef123456789abcdef"] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s);
        }
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert!(BigUint::from_hex("").is_none());
        assert!(BigUint::from_hex("xyz").is_none());
        // Odd-length strings parse too.
        assert_eq!(BigUint::from_hex("abc").unwrap(), BigUint::from_u64(0xabc));
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(100);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert_eq!(v.bit_len(), 101);
    }

    #[test]
    fn mul_u64_and_div_rem_u64() {
        let v = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let m = v.mul_u64(12345);
        let (q, r) = m.div_rem_u64(12345);
        assert_eq!(q, v);
        assert_eq!(r, 0);
    }
}
