//! Error type for cryptographic operations.

use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Ciphertext is malformed (wrong length, missing IV, ...).
    InvalidCiphertext(&'static str),
    /// PKCS#7 or PKCS#1 padding failed validation.
    InvalidPadding,
    /// A signature did not verify.
    SignatureInvalid,
    /// A message is too large for the key size.
    MessageTooLong,
    /// Serialized key material could not be parsed.
    MalformedKey(&'static str),
    /// Key generation failed (e.g., could not find a prime in budget).
    KeyGeneration(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidCiphertext(why) => write!(f, "invalid ciphertext: {why}"),
            CryptoError::InvalidPadding => write!(f, "invalid padding"),
            CryptoError::SignatureInvalid => write!(f, "signature verification failed"),
            CryptoError::MessageTooLong => write!(f, "message too long for key size"),
            CryptoError::MalformedKey(why) => write!(f, "malformed key material: {why}"),
            CryptoError::KeyGeneration(why) => write!(f, "key generation failed: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CryptoError::InvalidCiphertext("too short").to_string(),
            "invalid ciphertext: too short"
        );
        assert_eq!(CryptoError::InvalidPadding.to_string(), "invalid padding");
        assert_eq!(CryptoError::SignatureInvalid.to_string(), "signature verification failed");
    }
}
