//! Property-based tests for AES modes, HMAC, and sealed-blob behaviour.

use sharoes_crypto::aes::Aes128;
use sharoes_crypto::hmac::{hmac, hmac_sha256};
use sharoes_crypto::modes::{cbc_open, cbc_seal, ctr_open, ctr_seal};
use sharoes_crypto::sha1::Sha1;
use sharoes_crypto::sha256::Sha256;
use sharoes_crypto::{Digest, SymKey};
use sharoes_testkit::prelude::*;

prop! {
    #![cases(128)]

    fn ctr_roundtrip(
        key in gen::byte_arrays::<16>(),
        pt in gen::vecs(gen::u8s(), 0..2048),
        seed in gen::u64s(),
    ) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let blob = ctr_seal(&aes, &mut rng, &pt);
        prop_assert_eq!(ctr_open(&aes, &blob).unwrap(), pt);
    }

    fn cbc_roundtrip(
        key in gen::byte_arrays::<16>(),
        pt in gen::vecs(gen::u8s(), 0..1024),
        seed in gen::u64s(),
    ) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let blob = cbc_seal(&aes, &mut rng, &pt);
        prop_assert_eq!(cbc_open(&aes, &blob).unwrap(), pt);
    }

    fn block_roundtrip(key in gen::byte_arrays::<16>(), block in gen::byte_arrays::<16>()) {
        let aes = Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    fn ciphertext_differs_from_plaintext(
        key in gen::byte_arrays::<16>(),
        pt in gen::vecs(gen::u8s(), 16..256),
        seed in gen::u64s(),
    ) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let blob = ctr_seal(&aes, &mut rng, &pt);
        prop_assert_ne!(&blob[16..], &pt[..]);
    }

    fn fresh_ivs_give_distinct_ciphertexts(
        key in gen::byte_arrays::<16>(),
        pt in gen::vecs(gen::u8s(), 1..128),
        seed in gen::u64s(),
    ) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let b1 = ctr_seal(&aes, &mut rng, &pt);
        let b2 = ctr_seal(&aes, &mut rng, &pt);
        prop_assert_ne!(b1, b2);
    }

    fn hmac_is_deterministic_and_key_sensitive(
        key in gen::vecs(gen::u8s(), 0..100),
        msg in gen::vecs(gen::u8s(), 0..500),
    ) {
        let a = hmac_sha256(&key, &msg);
        let b = hmac_sha256(&key, &msg);
        prop_assert_eq!(a, b);
        let mut key2 = key.clone();
        key2.push(0xFF);
        prop_assert_ne!(hmac_sha256(&key2, &msg), a);
    }

    fn hmac_sha1_and_sha256_lengths(
        key in gen::vecs(gen::u8s(), 0..40),
        msg in gen::vecs(gen::u8s(), 0..200),
    ) {
        prop_assert_eq!(hmac::<Sha256>(&key, &msg).len(), 32);
        prop_assert_eq!(hmac::<Sha1>(&key, &msg).len(), 20);
    }

    fn digest_split_invariance(data in gen::vecs(gen::u8s(), 0..1000), split in gen::indices()) {
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize_vec(), Sha256::digest(&data).to_vec());
    }

    fn symkey_derive_injective_on_labels(
        parent in gen::byte_arrays::<16>(),
        a in gen::string_of(gen::LOWER, 1..21),
        b in gen::string_of(gen::LOWER, 1..21),
    ) {
        prop_assume!(a != b);
        let parent = SymKey(parent);
        prop_assert_ne!(SymKey::derive(&parent, a.as_bytes()), SymKey::derive(&parent, b.as_bytes()));
    }
}
