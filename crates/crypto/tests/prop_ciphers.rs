//! Property-based tests for AES modes, HMAC, and sealed-blob behaviour.

use proptest::prelude::*;
use sharoes_crypto::aes::Aes128;
use sharoes_crypto::hmac::{hmac, hmac_sha256};
use sharoes_crypto::modes::{cbc_open, cbc_seal, ctr_open, ctr_seal};
use sharoes_crypto::sha1::Sha1;
use sharoes_crypto::sha256::Sha256;
use sharoes_crypto::{Digest, HmacDrbg, SymKey};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ctr_roundtrip(key in any::<[u8; 16]>(), pt in prop::collection::vec(any::<u8>(), 0..2048), seed in any::<u64>()) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let blob = ctr_seal(&aes, &mut rng, &pt);
        prop_assert_eq!(ctr_open(&aes, &blob).unwrap(), pt);
    }

    #[test]
    fn cbc_roundtrip(key in any::<[u8; 16]>(), pt in prop::collection::vec(any::<u8>(), 0..1024), seed in any::<u64>()) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let blob = cbc_seal(&aes, &mut rng, &pt);
        prop_assert_eq!(cbc_open(&aes, &blob).unwrap(), pt);
    }

    #[test]
    fn block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn ciphertext_differs_from_plaintext(key in any::<[u8; 16]>(), pt in prop::collection::vec(any::<u8>(), 16..256), seed in any::<u64>()) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let blob = ctr_seal(&aes, &mut rng, &pt);
        prop_assert_ne!(&blob[16..], &pt[..]);
    }

    #[test]
    fn fresh_ivs_give_distinct_ciphertexts(key in any::<[u8; 16]>(), pt in prop::collection::vec(any::<u8>(), 1..128), seed in any::<u64>()) {
        let aes = Aes128::new(&key);
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let b1 = ctr_seal(&aes, &mut rng, &pt);
        let b2 = ctr_seal(&aes, &mut rng, &pt);
        prop_assert_ne!(b1, b2);
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in prop::collection::vec(any::<u8>(), 0..100),
        msg in prop::collection::vec(any::<u8>(), 0..500),
    ) {
        let a = hmac_sha256(&key, &msg);
        let b = hmac_sha256(&key, &msg);
        prop_assert_eq!(a, b);
        let mut key2 = key.clone();
        key2.push(0xFF);
        prop_assert_ne!(hmac_sha256(&key2, &msg), a);
    }

    #[test]
    fn hmac_sha1_and_sha256_lengths(key in prop::collection::vec(any::<u8>(), 0..40), msg in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hmac::<Sha256>(&key, &msg).len(), 32);
        prop_assert_eq!(hmac::<Sha1>(&key, &msg).len(), 20);
    }

    #[test]
    fn digest_split_invariance(data in prop::collection::vec(any::<u8>(), 0..1000), split in any::<prop::sample::Index>()) {
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize_vec(), Sha256::digest(&data).to_vec());
    }

    #[test]
    fn symkey_derive_injective_on_labels(parent in any::<[u8; 16]>(), a in "[a-z]{1,20}", b in "[a-z]{1,20}") {
        prop_assume!(a != b);
        let parent = SymKey(parent);
        prop_assert_ne!(SymKey::derive(&parent, a.as_bytes()), SymKey::derive(&parent, b.as_bytes()));
    }
}
