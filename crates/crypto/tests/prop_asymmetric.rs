//! Property tests for RSA and ESIGN: round-trip laws, cross-key rejection,
//! and malleability resistance, with small keys and few cases (prime
//! generation is expensive). Keys come from the shared fixed-seed pools in
//! `sharoes_testkit::keys` so keygen cost is paid once per process.

use sharoes_testkit::keys::{esign768, rsa512};
use sharoes_testkit::prelude::*;

prop! {
    #![cases(48)]

    fn rsa_encrypt_decrypt_roundtrip(msg in gen::vecs(gen::u8s(), 0..53), seed in gen::u64s()) {
        let key = &rsa512()[0];
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = key.public_key().encrypt(&mut rng, &msg).unwrap();
        prop_assert_eq!(key.decrypt(&ct).unwrap(), msg);
    }

    fn rsa_wrong_key_fails_or_garbles(msg in gen::vecs(gen::u8s(), 1..53), seed in gen::u64s()) {
        let [k1, k2] = rsa512();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = k1.public_key().encrypt(&mut rng, &msg).unwrap();
        match k2.decrypt(&ct) {
            Err(_) => {}
            Ok(pt) => prop_assert_ne!(pt, msg),
        }
    }

    fn rsa_blob_roundtrip(blob in gen::vecs(gen::u8s(), 0..400), seed in gen::u64s()) {
        let key = &rsa512()[0];
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = key.public_key().encrypt_blob(&mut rng, &blob).unwrap();
        prop_assert_eq!(key.decrypt_blob(&ct).unwrap(), blob);
    }

    fn rsa_sign_verify_laws(msg in gen::vecs(gen::u8s(), 0..256)) {
        let [k1, k2] = rsa512();
        let sig = k1.sign(&msg);
        k1.public_key().verify(&msg, &sig).unwrap();
        // Other key rejects.
        prop_assert!(k2.public_key().verify(&msg, &sig).is_err());
        // Any single-byte perturbation of the message rejects.
        let mut other = msg.clone();
        other.push(0x01);
        prop_assert!(k1.public_key().verify(&other, &sig).is_err());
    }

    fn rsa_signature_bitflip_rejected(
        msg in gen::vecs(gen::u8s(), 0..64),
        pos in gen::indices(),
        bit in gen::in_range(0u8..8),
    ) {
        let key = &rsa512()[0];
        let mut sig = key.sign(&msg);
        let i = pos.index(sig.len());
        sig[i] ^= 1 << bit;
        prop_assert!(key.public_key().verify(&msg, &sig).is_err());
    }

    fn esign_sign_verify_laws(msg in gen::vecs(gen::u8s(), 0..256), seed in gen::u64s()) {
        let [k1, k2] = esign768();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let sig = k1.sign(&mut rng, &msg);
        k1.public_key().verify(&msg, &sig).unwrap();
        prop_assert!(k2.public_key().verify(&msg, &sig).is_err());
        let mut other = msg.clone();
        other.push(0xFF);
        prop_assert!(k1.public_key().verify(&other, &sig).is_err());
    }

    fn esign_signature_bitflip_rejected(
        msg in gen::vecs(gen::u8s(), 0..64),
        pos in gen::indices(),
        bit in gen::in_range(0u8..8),
        seed in gen::u64s(),
    ) {
        let key = &esign768()[0];
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let mut sig = key.sign(&mut rng, &msg);
        let i = pos.index(sig.len());
        sig[i] ^= 1 << bit;
        // An ESIGN signature authenticates the top hash window; flips in the
        // low bits of s can survive e-th powering only with negligible
        // probability. Assert rejection; if this ever flakes it indicates a
        // real soundness bug worth investigating.
        prop_assert!(key.public_key().verify(&msg, &sig).is_err());
    }
}
