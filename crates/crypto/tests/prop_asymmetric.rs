//! Property tests for RSA and ESIGN: round-trip laws, cross-key rejection,
//! and malleability resistance, with small keys and few cases (prime
//! generation is expensive).

use proptest::prelude::*;
use sharoes_crypto::{EsignPrivateKey, HmacDrbg, RsaPrivateKey};
use std::sync::OnceLock;

/// A few fixed keys shared across cases (keygen dominates otherwise).
fn rsa_keys() -> &'static [RsaPrivateKey; 2] {
    static KEYS: OnceLock<[RsaPrivateKey; 2]> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = HmacDrbg::from_seed_u64(0xA11);
        [
            RsaPrivateKey::generate(512, &mut rng).unwrap(),
            RsaPrivateKey::generate(512, &mut rng).unwrap(),
        ]
    })
}

fn esign_keys() -> &'static [EsignPrivateKey; 2] {
    static KEYS: OnceLock<[EsignPrivateKey; 2]> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = HmacDrbg::from_seed_u64(0xE5);
        [
            EsignPrivateKey::generate(768, &mut rng).unwrap(),
            EsignPrivateKey::generate(768, &mut rng).unwrap(),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rsa_encrypt_decrypt_roundtrip(msg in prop::collection::vec(any::<u8>(), 0..53), seed in any::<u64>()) {
        let key = &rsa_keys()[0];
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = key.public_key().encrypt(&mut rng, &msg).unwrap();
        prop_assert_eq!(key.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn rsa_wrong_key_fails_or_garbles(msg in prop::collection::vec(any::<u8>(), 1..53), seed in any::<u64>()) {
        let [k1, k2] = rsa_keys();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = k1.public_key().encrypt(&mut rng, &msg).unwrap();
        match k2.decrypt(&ct) {
            Err(_) => {}
            Ok(pt) => prop_assert_ne!(pt, msg),
        }
    }

    #[test]
    fn rsa_blob_roundtrip(blob in prop::collection::vec(any::<u8>(), 0..400), seed in any::<u64>()) {
        let key = &rsa_keys()[0];
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let ct = key.public_key().encrypt_blob(&mut rng, &blob).unwrap();
        prop_assert_eq!(key.decrypt_blob(&ct).unwrap(), blob);
    }

    #[test]
    fn rsa_sign_verify_laws(msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let [k1, k2] = rsa_keys();
        let sig = k1.sign(&msg);
        k1.public_key().verify(&msg, &sig).unwrap();
        // Other key rejects.
        prop_assert!(k2.public_key().verify(&msg, &sig).is_err());
        // Any single-byte perturbation of the message rejects.
        let mut other = msg.clone();
        other.push(0x01);
        prop_assert!(k1.public_key().verify(&other, &sig).is_err());
    }

    #[test]
    fn rsa_signature_bitflip_rejected(msg in prop::collection::vec(any::<u8>(), 0..64), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let key = &rsa_keys()[0];
        let mut sig = key.sign(&msg);
        let i = pos.index(sig.len());
        sig[i] ^= 1 << bit;
        prop_assert!(key.public_key().verify(&msg, &sig).is_err());
    }

    #[test]
    fn esign_sign_verify_laws(msg in prop::collection::vec(any::<u8>(), 0..256), seed in any::<u64>()) {
        let [k1, k2] = esign_keys();
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let sig = k1.sign(&mut rng, &msg);
        k1.public_key().verify(&msg, &sig).unwrap();
        prop_assert!(k2.public_key().verify(&msg, &sig).is_err());
        let mut other = msg.clone();
        other.push(0xFF);
        prop_assert!(k1.public_key().verify(&other, &sig).is_err());
    }

    #[test]
    fn esign_signature_bitflip_rejected(msg in prop::collection::vec(any::<u8>(), 0..64), pos in any::<prop::sample::Index>(), bit in 0u8..8, seed in any::<u64>()) {
        let key = &esign_keys()[0];
        let mut rng = HmacDrbg::from_seed_u64(seed);
        let mut sig = key.sign(&mut rng, &msg);
        let i = pos.index(sig.len());
        sig[i] ^= 1 << bit;
        // An ESIGN signature authenticates the top hash window; flips in the
        // low bits of s can survive e-th powering only with negligible
        // probability. Assert rejection; if this ever flakes it indicates a
        // real soundness bug worth investigating.
        prop_assert!(key.public_key().verify(&msg, &sig).is_err());
    }
}
