//! Property-based tests for the arbitrary-precision integer core.
//!
//! The algebraic identities here (ring axioms, division identity, modular
//! inverse law) are what RSA/ESIGN correctness ultimately rests on, so we
//! hammer them with random multi-limb operands.

use sharoes_crypto::BigUint;
use sharoes_testkit::prelude::*;

fn biguints(max_limbs: usize) -> Gen<BigUint> {
    gen::vecs(gen::u64s(), 0..max_limbs + 1).map(BigUint::from_limbs)
}

fn nonzero_biguints(max_limbs: usize) -> Gen<BigUint> {
    biguints(max_limbs).filter("nonzero", |v| !v.is_zero())
}

prop! {
    #![cases(256)]

    fn add_is_commutative(a in biguints(8), b in biguints(8)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    fn add_is_associative(a in biguints(6), b in biguints(6), c in biguints(6)) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    fn add_then_sub_roundtrips(a in biguints(8), b in biguints(8)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    fn mul_is_commutative(a in biguints(8), b in biguints(8)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    fn mul_distributes_over_add(a in biguints(5), b in biguints(5), c in biguints(5)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    fn karatsuba_agrees_with_schoolbook(
        a in gen::vecs(gen::u64s(), 24..40).map(BigUint::from_limbs),
        b in gen::vecs(gen::u64s(), 24..40).map(BigUint::from_limbs),
    ) {
        // Karatsuba path triggers at >= 24 limbs per operand; verify against
        // small-operand splits that take the schoolbook path.
        let expected = {
            // Multiply via shift-and-add decomposition of b into u64 chunks.
            let mut acc = BigUint::zero();
            for (i, limb) in b.to_bytes_be().rchunks(8).enumerate() {
                let mut l = 0u64;
                for &byte in limb {
                    l = (l << 8) | byte as u64;
                }
                acc = acc.add(&a.mul_u64(l).shl(64 * i));
            }
            acc
        };
        prop_assert_eq!(a.mul(&b), expected);
    }

    fn division_identity(a in biguints(10), b in nonzero_biguints(6)) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r.cmp_ref(&b) == std::cmp::Ordering::Less);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    fn shift_roundtrip(a in biguints(8), n in gen::in_range(0usize..200)) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    fn bytes_roundtrip(a in biguints(8)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    fn hex_roundtrip(a in biguints(8)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    fn mod_inv_law(a in nonzero_biguints(4), m in nonzero_biguints(4)) {
        if let Some(inv) = a.mod_inv(&m) {
            prop_assert_eq!(a.mul(&inv).rem(&m), BigUint::one().rem(&m));
            prop_assert!(inv.cmp_ref(&m) == std::cmp::Ordering::Less);
        } else {
            // Inverse fails only when gcd != 1 (or degenerate modulus).
            let g = a.gcd(&m);
            prop_assert!(m.is_one() || !g.is_one());
        }
    }

    fn mod_pow_matches_repeated_mul(
        a in biguints(3),
        e in gen::in_range(0u64..48),
        m in nonzero_biguints(3),
    ) {
        prop_assume!(!m.is_one(), "modulus 1 is degenerate");
        let fast = a.mod_pow(&BigUint::from_u64(e), &m);
        let mut slow = BigUint::one().rem(&m);
        for _ in 0..e {
            slow = slow.mul_mod(&a, &m);
        }
        prop_assert_eq!(fast, slow);
    }

    fn gcd_divides_both(a in nonzero_biguints(5), b in nonzero_biguints(5)) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    fn cmp_is_consistent_with_sub(a in biguints(6), b in biguints(6)) {
        match a.cmp_ref(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
