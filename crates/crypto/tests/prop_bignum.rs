//! Property-based tests for the arbitrary-precision integer core.
//!
//! The algebraic identities here (ring axioms, division identity, modular
//! inverse law) are what RSA/ESIGN correctness ultimately rests on, so we
//! hammer them with random multi-limb operands.

use proptest::prelude::*;
use sharoes_crypto::BigUint;

fn biguint_strategy(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
}

fn nonzero_biguint(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    biguint_strategy(max_limbs).prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_is_commutative(a in biguint_strategy(8), b in biguint_strategy(8)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_is_associative(a in biguint_strategy(6), b in biguint_strategy(6), c in biguint_strategy(6)) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_then_sub_roundtrips(a in biguint_strategy(8), b in biguint_strategy(8)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_is_commutative(a in biguint_strategy(8), b in biguint_strategy(8)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in biguint_strategy(5), b in biguint_strategy(5), c in biguint_strategy(5)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook(
        a in prop::collection::vec(any::<u64>(), 24..40).prop_map(BigUint::from_limbs),
        b in prop::collection::vec(any::<u64>(), 24..40).prop_map(BigUint::from_limbs),
    ) {
        // Karatsuba path triggers at >= 24 limbs per operand; verify against
        // small-operand splits that take the schoolbook path.
        let expected = {
            // Multiply via shift-and-add decomposition of b into u64 chunks.
            let mut acc = BigUint::zero();
            for (i, limb) in b.to_bytes_be().rchunks(8).enumerate() {
                let mut l = 0u64;
                for &byte in limb {
                    l = (l << 8) | byte as u64;
                }
                acc = acc.add(&a.mul_u64(l).shl(64 * i));
            }
            acc
        };
        prop_assert_eq!(a.mul(&b), expected);
    }

    #[test]
    fn division_identity(a in biguint_strategy(10), b in nonzero_biguint(6)) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r.cmp_ref(&b) == std::cmp::Ordering::Less);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shift_roundtrip(a in biguint_strategy(8), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn bytes_roundtrip(a in biguint_strategy(8)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint_strategy(8)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn mod_inv_law(a in nonzero_biguint(4), m in nonzero_biguint(4)) {
        if let Some(inv) = a.mod_inv(&m) {
            prop_assert_eq!(a.mul(&inv).rem(&m), BigUint::one().rem(&m));
            prop_assert!(inv.cmp_ref(&m) == std::cmp::Ordering::Less);
        } else {
            // Inverse fails only when gcd != 1 (or degenerate modulus).
            let g = a.gcd(&m);
            prop_assert!(m.is_one() || !g.is_one());
        }
    }

    #[test]
    fn mod_pow_matches_repeated_mul(a in biguint_strategy(3), e in 0u64..48, m in nonzero_biguint(3)) {
        prop_assume!(!m.is_one());
        let fast = a.mod_pow(&BigUint::from_u64(e), &m);
        let mut slow = BigUint::one().rem(&m);
        for _ in 0..e {
            slow = slow.mul_mod(&a, &m);
        }
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn gcd_divides_both(a in nonzero_biguint(5), b in nonzero_biguint(5)) {
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn cmp_is_consistent_with_sub(a in biguint_strategy(6), b in biguint_strategy(6)) {
        match a.cmp_ref(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
