//! Known-answer tests against published NIST / RFC vectors.
//!
//! Property tests prove the primitives are self-consistent (seal inverts
//! open, HMAC is deterministic) but a self-consistent implementation can
//! still be uniformly wrong. These vectors pin the implementations to the
//! official standards:
//!
//! * AES-128 block: FIPS-197 appendix C.1
//! * AES-128 ECB/CBC/CTR: NIST SP 800-38A appendix F (F.1.1, F.2.1, F.5.1)
//! * SHA-256 / SHA-1: FIPS-180 examples (the "abc" and two-block messages)
//! * MD5: RFC 1321 appendix A.5
//! * HMAC-SHA256: RFC 4231 test cases 1-2
//! * HMAC-SHA1 / HMAC-MD5: RFC 2202 test cases 1-2
//! * HMAC-DRBG (SHA-256, no reseed): NIST CAVS 14.3 HMAC_DRBG.rsp COUNT=0

use sharoes_crypto::aes::Aes128;
use sharoes_crypto::hmac::{hmac_md5, hmac_sha1};
use sharoes_crypto::md5::Md5;
use sharoes_crypto::modes::{cbc_open, ctr_xor};
use sharoes_crypto::sha1::Sha1;
use sharoes_crypto::{hmac_sha256, HmacDrbg, RandomSource, Sha256};

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex literal");
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The SP 800-38A appendix F key and four plaintext blocks shared by the
/// ECB/CBC/CTR examples.
const KEY_38A: &str = "2b7e151628aed2a6abf7158809cf4f3c";
const PT_38A: [&str; 4] = [
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
];

fn block16(s: &str) -> [u8; 16] {
    let v = unhex(s);
    let mut b = [0u8; 16];
    b.copy_from_slice(&v);
    b
}

#[test]
fn aes128_block_fips197() {
    let aes = Aes128::new(&block16("000102030405060708090a0b0c0d0e0f"));
    let mut block = block16("00112233445566778899aabbccddeeff");
    aes.encrypt_block(&mut block);
    assert_eq!(hex(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decrypt_block(&mut block);
    assert_eq!(hex(&block), "00112233445566778899aabbccddeeff");
}

#[test]
fn aes128_ecb_sp800_38a_f11() {
    let aes = Aes128::new(&block16(KEY_38A));
    let expected = [
        "3ad77bb40d7a3660a89ecaf32466ef97",
        "f5d3d58503b9699de785895a96fdbaaf",
        "43b1cd7f598ece23881b00e3ed030688",
        "7b0c785e27e8ad3f8223207104725dd4",
    ];
    for (pt, ct) in PT_38A.iter().zip(expected) {
        let mut block = block16(pt);
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), ct);
    }
}

/// SP 800-38A F.2.1 ciphertext blocks for `KEY_38A` / `PT_38A` with IV
/// `000102...0f`.
const CBC_CT_38A: [&str; 4] = [
    "7649abac8119b246cee98e9b12e9197d",
    "5086cb9b507219ee95db113a917678b2",
    "73bed6b8e3c1743b7116e69e22229516",
    "3ff1caa1681fac09120eca307586e1a7",
];

#[test]
fn aes128_cbc_encrypt_chain_sp800_38a_f21() {
    // The encryption chain, block by block, against the official vectors.
    let aes = Aes128::new(&block16(KEY_38A));
    let mut prev = block16("000102030405060708090a0b0c0d0e0f");
    for (pt, ct) in PT_38A.iter().zip(CBC_CT_38A) {
        let mut block = block16(pt);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        aes.encrypt_block(&mut block);
        assert_eq!(hex(&block), ct);
        prev = block;
    }
}

#[test]
fn aes128_cbc_open_decrypts_sp800_38a_f21() {
    // `cbc_open` expects iv || ct with PKCS#7 padding; the NIST message is
    // exactly four blocks, so append the ciphertext of one full pad block
    // (chained off C4) and expect the unpadded NIST plaintext back. The
    // pad-block ciphertext is produced by `encrypt_block`, which the
    // FIPS-197/ECB KATs above pin independently. `cbc_seal` is covered by
    // this plus the seal/open roundtrip property in prop_ciphers.
    let aes = Aes128::new(&block16(KEY_38A));
    let mut blob = unhex("000102030405060708090a0b0c0d0e0f");
    for ct in CBC_CT_38A {
        blob.extend_from_slice(&unhex(ct));
    }
    let mut pad_block = [16u8; 16];
    let c4 = block16(CBC_CT_38A[3]);
    for (b, p) in pad_block.iter_mut().zip(c4.iter()) {
        *b ^= p;
    }
    aes.encrypt_block(&mut pad_block);
    blob.extend_from_slice(&pad_block);

    let pt = cbc_open(&aes, &blob).unwrap();
    assert_eq!(hex(&pt), PT_38A.concat());
}

#[test]
fn aes128_ctr_sp800_38a_f51() {
    let aes = Aes128::new(&block16(KEY_38A));
    let iv = block16("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    let mut data = unhex(&PT_38A.concat());
    ctr_xor(&aes, &iv, &mut data);
    assert_eq!(
        hex(&data),
        concat!(
            "874d6191b620e3261bef6864990db6ce",
            "9806f66b7970fdff8617187bb9fffdff",
            "5ae4df3edbd5d35e5b4f09020db03eab",
            "1e031dda2fbe03d1792170a0f3009cee"
        )
    );
    // CTR is an involution.
    ctr_xor(&aes, &iv, &mut data);
    assert_eq!(hex(&data), PT_38A.concat());
}

#[test]
fn sha256_fips180() {
    assert_eq!(
        hex(&Sha256::digest(b"")),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        hex(&Sha256::digest(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    assert_eq!(
        hex(&Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

#[test]
fn sha1_fips180() {
    assert_eq!(hex(&Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    assert_eq!(hex(&Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

#[test]
fn md5_rfc1321() {
    assert_eq!(hex(&Md5::digest(b"")), "d41d8cd98f00b204e9800998ecf8427e");
    assert_eq!(hex(&Md5::digest(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
}

#[test]
fn hmac_sha256_rfc4231() {
    assert_eq!(
        hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    );
    assert_eq!(
        hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    );
}

#[test]
fn hmac_sha1_rfc2202() {
    assert_eq!(
        hex(&hmac_sha1(&[0x0b; 20], b"Hi There")),
        "b617318655057264e28bc0b6fb378c8ef146be00"
    );
    assert_eq!(
        hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
        "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    );
}

#[test]
fn hmac_md5_rfc2202() {
    assert_eq!(hex(&hmac_md5(&[0x0b; 16], b"Hi There")), "9294727a3638bb1c13f48ef8158bfc9d");
    assert_eq!(
        hex(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
        "750c783e6ab0b503eaa86e310a5db738"
    );
}

#[test]
fn hmac_drbg_sha256_cavs_14_3() {
    // CAVS 14.3 HMAC_DRBG.rsp, SHA-256, no reseed, no personalization or
    // additional input, COUNT=0. The DRBG is instantiated with
    // entropy || nonce and generated from twice; CAVS compares the second
    // 1024-bit output.
    let entropy = unhex("ca851911349384bffe89de1cbdc46e6831e44d34a4fb935ee285dd14b71a7488");
    let nonce = unhex("659ba96c601dc69fc902940805ec0ca8");
    let mut seed = entropy;
    seed.extend_from_slice(&nonce);
    let mut drbg = HmacDrbg::new(&seed);
    let mut out = [0u8; 128];
    drbg.fill_bytes(&mut out);
    drbg.fill_bytes(&mut out);
    assert_eq!(
        hex(&out),
        concat!(
            "e528e9abf2dece54d47c7e75e5fe302149f817ea9fb4bee6f4199697d04d5b89",
            "d54fbb978a15b5c443c9ec21036d2460b6f73ebad0dc2aba6e624abf07745bc1",
            "07694bb7547bb0995f70de25d6b29e2d3011bb19d27676c07162c8b5ccde0668",
            "961df86803482cb37ed6d5c0bb8d50cf1f50d476aa0458bdaba806f48be9dcb8"
        )
    );
}
