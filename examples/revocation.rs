//! Revocation strategies (paper §IV-A.1): immediate vs lazy re-keying, and
//! what a revoked reader with cached keys can still do under each.
//!
//! ```sh
//! cargo run --example revocation
//! ```

use sharoes::prelude::*;
use std::sync::Arc;

const ALICE: Uid = Uid(1);
const BOB: Uid = Uid(2);

fn deploy() -> (Arc<SspServer>, Arc<UserDb>, Arc<Pki>, Keyring, Arc<SigKeyPool>, ClientConfig) {
    let mut db = UserDb::new();
    db.add_group(Gid(0), "wheel").unwrap();
    db.add_group(Gid(100), "eng").unwrap();
    db.add_user(Uid(0), "root", Gid(0)).unwrap();
    db.add_user(ALICE, "alice", Gid(100)).unwrap();
    db.add_user(BOB, "bob", Gid(100)).unwrap();

    let mut local = LocalFs::new(db, Gid(0), Mode::from_octal(0o755));
    local.mkdir(Uid(0), "/shared", Mode::from_octal(0o775)).unwrap();
    local.chown(Uid(0), "/shared", ALICE, Gid(100)).unwrap();
    local.create(ALICE, "/shared/roadmap.txt", Mode::from_octal(0o644)).unwrap();
    local.write(ALICE, "/shared/roadmap.txt", b"2026: world domination").unwrap();

    let mut rng = HmacDrbg::from_seed_u64(55);
    let ring = Keyring::generate(local.users(), 1024, &mut rng).unwrap();
    let config = ClientConfig {
        crypto: CryptoParams { rsa_bits: 1024, ..CryptoParams::test() },
        ..Default::default()
    };
    let pool = Arc::new(SigKeyPool::new(config.crypto));
    pool.prefill_parallel(16, 3);
    let server = SspServer::new().into_shared();
    let mut transport = InMemoryTransport::new(Arc::clone(&server) as _);
    Migrator { fs: &local, config: &config, ring: &ring, pool: &pool, downgrade_unsupported: true }
        .migrate(&mut transport, &mut rng)
        .unwrap();
    (server, Arc::new(local.users().clone()), Arc::new(ring.public_directory()), ring, pool, config)
}

fn main() {
    let (server, db, pki, ring, pool, base_config) = deploy();
    let mount = |uid: Uid, revocation: RevocationMode| -> SharoesClient {
        let mut config = base_config.clone();
        config.revocation = revocation;
        let transport = InMemoryTransport::new(Arc::clone(&server) as _);
        let mut c = SharoesClient::new(
            Box::new(transport),
            config,
            Arc::clone(&db),
            Arc::clone(&pki),
            ring.identity(uid).unwrap(),
            Arc::clone(&pool),
        );
        c.mount().unwrap();
        c
    };

    // ------------------------------------------------ immediate revocation
    println!("== immediate revocation (the prototype default) ==");
    let mut alice = mount(ALICE, RevocationMode::Immediate);
    let mut bob = mount(BOB, RevocationMode::Immediate);
    println!("bob reads: {:?}", String::from_utf8_lossy(&bob.read("/shared/roadmap.txt").unwrap()));

    let before = alice.meter().sample();
    alice.chmod("/shared/roadmap.txt", Mode::from_octal(0o600)).unwrap();
    let cost = alice.meter().sample().since(&before);
    println!(
        "chmod 600: re-keyed + re-encrypted immediately \
         ({} round trips, {} B up — the data moved under a fresh DEK)",
        cost.round_trips, cost.bytes_up
    );

    let mut bob_fresh = mount(BOB, RevocationMode::Immediate);
    println!(
        "fresh bob mount: {:?}",
        bob_fresh.read("/shared/roadmap.txt").err().map(|e| e.to_string())
    );
    let st = alice.getattr("/shared/roadmap.txt").unwrap();
    println!("generation after immediate revoke: {}", st.generation);

    // ------------------------------------------------------ lazy revocation
    println!("\n== lazy revocation (Plutus-style) ==");
    alice.chmod("/shared/roadmap.txt", Mode::from_octal(0o644)).unwrap(); // re-grant
    let mut alice_lazy = mount(ALICE, RevocationMode::Lazy);

    let before = alice_lazy.meter().sample();
    alice_lazy.chmod("/shared/roadmap.txt", Mode::from_octal(0o600)).unwrap();
    let cost = alice_lazy.meter().sample().since(&before);
    let st = alice_lazy.getattr("/shared/roadmap.txt").unwrap();
    println!(
        "lazy chmod 600: only metadata replicas rewritten ({} B up), \
         rekey_pending = {}, generation still {}",
        cost.bytes_up, st.rekey_pending, st.generation
    );
    println!("(a revoked reader with a cached DEK could still decrypt the old ciphertext)");

    let before = alice_lazy.meter().sample();
    alice_lazy.write_file("/shared/roadmap.txt", b"2027: world domination (revised)").unwrap();
    let cost = alice_lazy.meter().sample().since(&before);
    let st = alice_lazy.getattr("/shared/roadmap.txt").unwrap();
    println!(
        "next owner write pays the deferred rekey: generation -> {}, \
         rekey_pending = {}, {} B up",
        st.generation, st.rekey_pending, cost.bytes_up
    );

    let mut bob_last = mount(BOB, RevocationMode::Lazy);
    println!(
        "bob after lazy rekey: {:?}",
        bob_last.read("/shared/roadmap.txt").err().map(|e| e.to_string())
    );
    println!(
        "owner still reads: {:?}",
        String::from_utf8_lossy(&alice_lazy.read("/shared/roadmap.txt").unwrap())
    );
}
