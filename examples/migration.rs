//! Migration over a real network: runs the `sharoes-sspd` TCP server on a
//! loopback port, migrates a synthetic enterprise tree into it over the
//! wire, then mounts a client over TCP and walks the data — the full
//! three-component architecture of paper Figure 6.
//!
//! ```sh
//! cargo run --example migration
//! ```

use sharoes::fs::treegen::{generate, TreeSpec};
use sharoes::prelude::*;
use std::sync::Arc;

fn main() {
    // ----------------------------------------------- the SSP site (remote)
    let server = SspServer::new().into_shared();
    let handle = serve(Arc::clone(&server), "127.0.0.1:0").expect("bind SSP");
    let addr = handle.addr().to_string();
    println!("sharoes-sspd listening on {addr}");

    // --------------------------------------- the enterprise (local) side
    let (local, stats) =
        generate(&TreeSpec { users: 3, dirs_per_user: 3, files_per_dir: 2, ..Default::default() })
            .expect("tree generation");
    println!("local tree: {} dirs, {} files, {} bytes", stats.dirs, stats.files, stats.bytes);

    let mut rng = HmacDrbg::from_seed_u64(1234);
    println!("creating cryptographic infrastructure (user/group RSA keys) ...");
    let ring = Keyring::generate(local.users(), 1024, &mut rng).unwrap();
    let config = ClientConfig {
        crypto: CryptoParams { rsa_bits: 1024, ..CryptoParams::test() },
        ..Default::default()
    };
    let pool = Arc::new(SigKeyPool::new(config.crypto));
    pool.prefill_parallel(((stats.dirs + stats.files) * 2 + 16).min(256), 77);

    // ------------------------------------------ migration over the wire
    let mut transport = TcpTransport::connect(&addr).expect("connect");
    let report = Migrator {
        fs: &local,
        config: &config,
        ring: &ring,
        pool: &pool,
        downgrade_unsupported: true,
    }
    .migrate(&mut transport, &mut rng)
    .expect("migration");
    println!(
        "migration complete: {} records / {} bytes shipped over TCP; \
         {} superblocks, {} group key blocks, {} split entries",
        report.records,
        report.bytes,
        report.superblocks,
        report.group_key_blocks,
        report.split_entries
    );

    // --------------------------------------------- a client, also on TCP
    let uid = Uid(1000); // user0
    let transport = TcpTransport::connect(&addr).expect("connect client");
    let mut client = SharoesClient::new(
        Box::new(transport),
        config,
        Arc::new(local.users().clone()),
        Arc::new(ring.public_directory()),
        ring.identity(uid).unwrap(),
        pool,
    );
    client.mount().expect("mount over TCP");
    println!("\nmounted as user0; walking /home/user0:");

    let entries = client.readdir("/home/user0").expect("readdir");
    for entry in &entries {
        let path = format!("/home/user0/{}", entry.name);
        let st = client.getattr(&path).expect("stat");
        println!("  {:>9}  {}  {}", format!("{}", st.mode), st.size, entry.name);
    }

    // Read one file end-to-end and verify it matches the local original.
    let path = "/home/user0/proj0/file0.dat";
    let remote = client.read(path).expect("read over TCP");
    let local_copy = local.read(uid, path).expect("local read");
    assert_eq!(remote, local_copy, "migrated content must match the original");
    println!("\nverified {path}: {} bytes identical to the pre-migration original", remote.len());

    let meter = client.meter().sample();
    println!(
        "client traffic: {} round trips, {} B up, {} B down",
        meter.round_trips, meter.bytes_up, meter.bytes_down
    );
    handle.shutdown();
    println!("SSP shut down; done.");
}
