//! Team collaboration: the paper's data-sharing semantics in action —
//! group-writable project space, an exec-only "dropbox", read-only
//! listings, and a POSIX-ACL grant routed through a Scheme-2 split point.
//!
//! ```sh
//! cargo run --example team_collaboration
//! ```

use sharoes::prelude::*;
use std::sync::Arc;

const ALICE: Uid = Uid(1);
const BOB: Uid = Uid(2);
const CAROL: Uid = Uid(3);

struct Deployment {
    server: Arc<SspServer>,
    db: Arc<UserDb>,
    pki: Arc<Pki>,
    ring: Keyring,
    pool: Arc<SigKeyPool>,
    config: ClientConfig,
}

impl Deployment {
    fn mount(&self, uid: Uid) -> SharoesClient {
        let transport = InMemoryTransport::new(Arc::clone(&self.server) as _);
        let mut client = SharoesClient::new(
            Box::new(transport),
            self.config.clone(),
            Arc::clone(&self.db),
            Arc::clone(&self.pki),
            self.ring.identity(uid).unwrap(),
            Arc::clone(&self.pool),
        );
        client.mount().unwrap();
        client
    }
}

fn deploy() -> Deployment {
    let mut db = UserDb::new();
    db.add_group(Gid(0), "wheel").unwrap();
    db.add_group(Gid(100), "eng").unwrap();
    db.add_group(Gid(200), "sales").unwrap();
    db.add_user(Uid(0), "root", Gid(0)).unwrap();
    db.add_user(ALICE, "alice", Gid(100)).unwrap();
    db.add_user(BOB, "bob", Gid(100)).unwrap();
    db.add_user(CAROL, "carol", Gid(200)).unwrap();

    let mut local = LocalFs::new(db, Gid(0), Mode::from_octal(0o755));
    local.mkdir(Uid(0), "/home", Mode::from_octal(0o755)).unwrap();
    local.mkdir(Uid(0), "/home/alice", Mode::from_octal(0o755)).unwrap();
    local.chown(Uid(0), "/home/alice", ALICE, Gid(100)).unwrap();

    let mut rng = HmacDrbg::from_seed_u64(99);
    let ring = Keyring::generate(local.users(), 1024, &mut rng).unwrap();
    let config = ClientConfig {
        crypto: CryptoParams { rsa_bits: 1024, ..CryptoParams::test() },
        ..Default::default()
    };
    let pool = Arc::new(SigKeyPool::new(config.crypto));
    pool.prefill_parallel(32, 5);
    let server = SspServer::new().into_shared();
    let mut transport = InMemoryTransport::new(Arc::clone(&server) as _);
    Migrator { fs: &local, config: &config, ring: &ring, pool: &pool, downgrade_unsupported: true }
        .migrate(&mut transport, &mut rng)
        .unwrap();

    Deployment {
        server,
        db: Arc::new(local.users().clone()),
        pki: Arc::new(ring.public_directory()),
        ring,
        pool,
        config,
    }
}

fn show(result: Result<Vec<u8>, CoreError>) -> String {
    match result {
        Ok(bytes) => format!("OK: {:?}", String::from_utf8_lossy(&bytes)),
        Err(e) => format!("DENIED: {e}"),
    }
}

fn main() {
    let world = deploy();
    let mut alice = world.mount(ALICE);
    let mut bob = world.mount(BOB);
    let mut carol = world.mount(CAROL);

    // --- an exec-only dropbox (the paper's flagship CAP, §III-A) --------
    println!("== exec-only dropbox (mode 711) ==");
    alice.mkdir("/home/alice/dropbox", Mode::from_octal(0o711)).unwrap();
    alice.create("/home/alice/dropbox/for-bob.txt", Mode::from_octal(0o644)).unwrap();
    alice.write_file("/home/alice/dropbox/for-bob.txt", b"psst, the demo is friday").unwrap();

    println!(
        "bob lists dropbox      -> {:?}",
        bob.readdir("/home/alice/dropbox").err().map(|e| e.to_string())
    );
    println!("bob fetches exact name -> {}", show(bob.read("/home/alice/dropbox/for-bob.txt")));
    println!(
        "bob guesses a name     -> {}",
        show(bob.read("/home/alice/dropbox/secret-plans.txt"))
    );

    // --- a read-only listing (mode 744) ---------------------------------
    println!("\n== read-only listing (mode 744) ==");
    alice.mkdir("/home/alice/published", Mode::from_octal(0o744)).unwrap();
    alice.create("/home/alice/published/v1.tar", Mode::from_octal(0o644)).unwrap();
    let listing = bob.readdir("/home/alice/published").unwrap();
    println!(
        "bob sees names only: {:?} (inode hidden: {})",
        listing.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
        listing[0].inode.is_none()
    );
    println!("bob opens the entry -> {}", show(bob.read("/home/alice/published/v1.tar")));

    // --- group collaboration --------------------------------------------
    println!("\n== group-writable notes (mode 664) ==");
    alice.create("/home/alice/notes.md", Mode::from_octal(0o664)).unwrap();
    alice.write_file("/home/alice/notes.md", b"- kickoff monday\n").unwrap();
    let mut current = bob.read("/home/alice/notes.md").unwrap();
    current.extend_from_slice(b"- bob: bring donuts\n");
    bob.write_file("/home/alice/notes.md", &current).unwrap();
    println!("alice sees: {}", show(alice.read("/home/alice/notes.md")));
    println!("carol (other, r--): {}", show(carol.read("/home/alice/notes.md")));
    println!(
        "carol tries to write: {:?}",
        carol.write("/home/alice/notes.md", b"x").err().map(|e| e.to_string())
    );

    // --- an ACL grant for carol (Scheme-2 split point, §III-D.2) --------
    println!("\n== POSIX ACL grant for carol ==");
    alice.create("/home/alice/budget.xls", Mode::from_octal(0o640)).unwrap();
    alice.write_file("/home/alice/budget.xls", b"Q3: modest").unwrap();
    println!("carol before grant: {}", show(carol.read("/home/alice/budget.xls")));
    let mut acl = Acl::empty();
    acl.set_user(CAROL, Perm::R);
    alice.set_acl("/home/alice/budget.xls", acl).unwrap();
    let mut carol_fresh = world.mount(CAROL);
    println!("carol after grant:  {}", show(carol_fresh.read("/home/alice/budget.xls")));

    // --- revocation ------------------------------------------------------
    println!("\n== immediate revocation (chmod 600) ==");
    alice.chmod("/home/alice/notes.md", Mode::from_octal(0o600)).unwrap();
    let mut bob_fresh = world.mount(BOB);
    println!("bob after revoke: {}", show(bob_fresh.read("/home/alice/notes.md")));
    let st = alice.getattr("/home/alice/notes.md").unwrap();
    println!("file re-keyed: generation {} (data re-encrypted under a fresh DEK)", st.generation);
}
