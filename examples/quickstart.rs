//! Quickstart: migrate a small enterprise tree to an (untrusted) SSP and
//! access it through the Sharoes client with fully in-band key management.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sharoes::prelude::*;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------- 1. the enterprise
    // Users and groups: the identities whose public keys anchor all key
    // distribution (paper §II-A).
    let mut db = UserDb::new();
    db.add_group(Gid(0), "wheel").unwrap();
    db.add_group(Gid(100), "eng").unwrap();
    db.add_user(Uid(0), "root", Gid(0)).unwrap();
    db.add_user(Uid(1), "alice", Gid(100)).unwrap();
    db.add_user(Uid(2), "bob", Gid(100)).unwrap();

    // A local filesystem, as it would exist before outsourcing.
    let mut local = LocalFs::new(db, Gid(0), Mode::from_octal(0o755));
    local.mkdir(Uid(0), "/projects", Mode::from_octal(0o775)).unwrap();
    local.chown(Uid(0), "/projects", Uid(0), Gid(100)).unwrap();
    local.create(Uid(1), "/projects/design.md", Mode::from_octal(0o664)).unwrap();
    local.write(Uid(1), "/projects/design.md", b"# Design\nEncrypt everything.\n").unwrap();
    println!("local tree ready: {} inodes", local.inode_count());

    // --------------------------------------- 2. keys, SSP, and migration
    let mut rng = HmacDrbg::from_seed_u64(2024);
    println!("generating identity keys (RSA) ...");
    let ring = Keyring::generate(local.users(), 1024, &mut rng).unwrap();
    let config = ClientConfig {
        crypto: CryptoParams { rsa_bits: 1024, ..CryptoParams::test() },
        ..Default::default()
    };
    let pool = Arc::new(SigKeyPool::new(config.crypto));
    pool.prefill_parallel(16, 7);

    // The SSP: a dumb encrypted-object store. It could equally be the
    // `sharoes-sspd` binary reached over TCP (see examples/migration.rs).
    let server = SspServer::new().into_shared();

    let mut transport = InMemoryTransport::new(Arc::clone(&server) as _);
    let report = Migrator {
        fs: &local,
        config: &config,
        ring: &ring,
        pool: &pool,
        downgrade_unsupported: true,
    }
    .migrate(&mut transport, &mut rng)
    .unwrap();
    println!(
        "migrated: {} objects -> {} records ({} bytes) at the SSP, {} split entries",
        report.objects, report.records, report.bytes, report.split_entries
    );

    // ------------------------------------------------- 3. mount and use
    let db = Arc::new(local.users().clone());
    let pki = Arc::new(ring.public_directory());
    let mount = |uid: Uid| -> SharoesClient {
        let transport = InMemoryTransport::new(Arc::clone(&server) as _);
        let mut client = SharoesClient::new(
            Box::new(transport),
            config.clone(),
            Arc::clone(&db),
            Arc::clone(&pki),
            ring.identity(uid).unwrap(),
            Arc::clone(&pool),
        );
        client.mount().unwrap();
        client
    };

    let mut alice = mount(Uid(1));
    let mut bob = mount(Uid(2));

    // bob (same group) reads alice's group-readable file.
    let text = bob.read("/projects/design.md").unwrap();
    println!("bob reads design.md: {:?}", String::from_utf8_lossy(&text));

    // bob edits it (0664: group-writable), alice sees the change.
    bob.write_file("/projects/design.md", b"# Design v2\nSigned and sealed.\n").unwrap();
    let text = alice.read("/projects/design.md").unwrap();
    println!("alice reads back:  {:?}", String::from_utf8_lossy(&text));

    // Everything at the SSP is ciphertext: show what the provider sees.
    let stat = alice.getattr("/projects/design.md").unwrap();
    println!(
        "metadata at the client: inode#{} mode {} owner {:?}",
        stat.inode, stat.mode, stat.owner
    );
    println!(
        "the SSP holds {} opaque objects totalling {} bytes and no keys",
        server.store().object_count(),
        server.store().byte_count()
    );
}
