#!/bin/sh
# Hermetic CI gate: formatting, offline release build, offline tests.
#
# Everything runs with --offline against the vendored-free, path-only
# workspace — if any step reaches for the network or a registry, that is
# itself a CI failure (the hermetic-build policy in DESIGN.md).
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo check --offline (benches, examples, bins)"
cargo check --offline --workspace --all-targets

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== chaos suite at pinned seed (fault injection + snapshot recovery)"
SHAROES_TEST_SEED=0xC4A05EED cargo test -q --offline --test chaos

echo "== chaos + cluster failover at second pinned seed"
SHAROES_TEST_SEED=0xC1057E42 cargo test -q --offline --test chaos --test cluster

echo "CI OK"
