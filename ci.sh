#!/bin/sh
# Hermetic CI gate: formatting, lints, offline release build, offline tests,
# pinned-seed chaos runs, the metrics- and trace-determinism gates, the
# enterprise scenario gate (revocation/rotation oracles + registry
# determinism), the concurrency gate (sharded-vs-single-lock byte
# equivalence + the contention-bench throughput floor), and the bench
# ablations with their BENCH_*.json validation.
#
# Everything runs with --offline against the vendored-free, path-only
# workspace — if any step reaches for the network or a registry, that is
# itself a CI failure (the hermetic-build policy in DESIGN.md).
#
# Usage: ci.sh [--quick]
#   --quick   skip the bench/ablation steps (the BENCH_*.json writers and
#             their validation); all build, lint, test, and pinned-seed
#             gates still run. For tight edit-test loops.
#
# Each step is wall-clock timed; a summary table prints at the end and is
# also written machine-readably to target/ci-timings.tsv.
set -eu

cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "ci.sh: unknown argument: $arg" >&2; exit 2 ;;
    esac
done

STEP_TIMINGS=""

# step NAME CMD... — announce, run, and record wall-clock seconds.
step() {
    _name=$1
    shift
    echo "== $_name"
    _t0=$(date +%s)
    "$@"
    _t1=$(date +%s)
    STEP_TIMINGS="${STEP_TIMINGS}$((_t1 - _t0))s\t${_name}\n"
}

# diff_pair NAME A B — an independent determinism check on two files a gate
# test exported. A MISSING file is a hard failure (a silently skipped diff
# would pass vacuously if the exporting test were renamed or dropped).
diff_pair() {
    _pair_name=$1
    _a=$2
    _b=$3
    for _f in "$_a" "$_b"; do
        if [ ! -f "$_f" ]; then
            echo "ci.sh: determinism export missing: $_f (did the exporting gate run?)" >&2
            exit 1
        fi
    done
    step "$_pair_name" diff "$_a" "$_b"
}

# Remove stale exports up front so a diff can never compare files left over
# from a previous run (which would mask a gate that stopped exporting).
rm -f target/metrics-determinism-a.txt target/metrics-determinism-b.txt \
      target/trace-determinism-a.txt target/trace-determinism-b.txt \
      target/enterprise-registry-a.txt target/enterprise-registry-b.txt \
      target/index-registry-a.txt target/index-registry-b.txt \
      target/index-trace-a.txt target/index-trace-b.txt \
      target/concurrency-store-a.bin target/concurrency-store-b.bin \
      target/concurrency-engine-a.bin target/concurrency-engine-b.bin

step "cargo fmt --check" \
    cargo fmt --check

step "cargo clippy -D warnings (lints are errors)" \
    cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build --release --offline" \
    cargo build --release --offline --workspace

step "cargo check --offline (benches, examples, bins)" \
    cargo check --offline --workspace --all-targets

step "cargo test -q --offline" \
    cargo test -q --offline --workspace

step "chaos suite at pinned seed (fault injection + snapshot recovery)" \
    env SHAROES_TEST_SEED=0xC4A05EED cargo test -q --offline --test chaos

step "chaos + cluster failover at second pinned seed" \
    env SHAROES_TEST_SEED=0xC1057E42 cargo test -q --offline --test chaos --test cluster

step "chaos + cluster + metrics-determinism gate at third pinned seed" \
    env SHAROES_TEST_SEED=0x0B5EED42 \
    cargo test -q --offline --test chaos --test cluster --test obs_gate

# The obs_gate tests export the registry delta and the rendered trace trees
# of each identical seeded pass; diff them here as checks independent of the
# in-test assertions.
diff_pair "metrics determinism: diff exported registry deltas" \
    target/metrics-determinism-a.txt target/metrics-determinism-b.txt

diff_pair "trace determinism: diff exported span-tree renderings" \
    target/trace-determinism-a.txt target/trace-determinism-b.txt

step "enterprise scenario gate at fourth pinned seed (revocation + rotation oracles)" \
    env SHAROES_TEST_SEED=0xE57E4512 cargo test -q --offline --test enterprise

# Same independent check for the enterprise gate's registry exports.
diff_pair "enterprise determinism: diff exported registry deltas" \
    target/enterprise-registry-a.txt target/enterprise-registry-b.txt

step "crash-point recovery matrix at fifth pinned seed (log-engine durability)" \
    env SHAROES_TEST_SEED=0xC4A54F70 cargo test -q --offline --test crashpoints

step "authenticated-index gate at sixth pinned seed (verified scans + tamper oracle)" \
    env SHAROES_TEST_SEED=0x1DE15EED cargo test -q --offline --test index

# Same independent check for the index gate's registry and trace exports.
diff_pair "index determinism: diff exported registry deltas" \
    target/index-registry-a.txt target/index-registry-b.txt

diff_pair "index determinism: diff exported span-tree renderings" \
    target/index-trace-a.txt target/index-trace-b.txt

step "concurrency gate at seventh pinned seed (sharded == single-lock, pipelined TCP)" \
    env SHAROES_TEST_SEED=0x5CA1AB1E cargo test -q --offline --test concurrency

# Same independent check for the concurrency gate's snapshot exports:
# single-lock sequential vs sharded concurrent, store and engine.
diff_pair "concurrency determinism: diff store snapshots (single-lock vs sharded)" \
    target/concurrency-store-a.bin target/concurrency-store-b.bin

diff_pair "concurrency determinism: diff engine snapshots (single-lock vs sharded)" \
    target/concurrency-engine-a.bin target/concurrency-engine-b.bin

if [ "$QUICK" -eq 0 ]; then
    # Tracing-overhead ablation: spans off vs on over the same seeded
    # workload, exported as BENCH_obs.json for the trajectory record.
    step "tracing-overhead ablation (writes BENCH_obs.json)" \
        cargo run -q --offline --release -p sharoes-bench --bin paper-figures -- --quick obs

    # Indexed-vs-flat scan ablation with proof overhead, exported as
    # BENCH_index.json for the trajectory record.
    step "authenticated-index scan ablation (writes BENCH_index.json)" \
        cargo run -q --offline --release -p sharoes-bench --bin paper-figures -- --quick index

    # Contention bench: N client threads x M ops against a real sspd plus a
    # 3-node cluster; exits nonzero if multi-threaded throughput fails the
    # 2x floor over the single-threaded blocking baseline.
    step "contention bench + speedup floor (writes BENCH_concurrency.json)" \
        cargo run -q --offline --release -p sharoes-bench --bin paper-figures -- --quick concurrency

    # Every committed BENCH_*.json must re-parse with its required keys —
    # the hand-rolled JSON writers above get no silent formatting slips.
    step "bench-check: validate committed BENCH_*.json files" \
        cargo run -q --offline --release -p sharoes-bench --bin bench-check -- .
else
    echo "== (--quick: skipping bench/ablation steps)"
fi

echo ""
echo "== step timings"
printf "%b" "$STEP_TIMINGS"
mkdir -p target
printf "%b" "$STEP_TIMINGS" > target/ci-timings.tsv
echo "wrote target/ci-timings.tsv"
echo "CI OK"
