#!/bin/sh
# Hermetic CI gate: formatting, lints, offline release build, offline tests,
# pinned-seed chaos runs, the metrics- and trace-determinism gates, the
# enterprise scenario gate (revocation/rotation oracles + registry
# determinism), and the tracing-overhead ablation.
#
# Everything runs with --offline against the vendored-free, path-only
# workspace — if any step reaches for the network or a registry, that is
# itself a CI failure (the hermetic-build policy in DESIGN.md).
#
# Each step is wall-clock timed; a summary table prints at the end so a slow
# step shows up as a number, not a feeling.
set -eu

cd "$(dirname "$0")"

STEP_TIMINGS=""

# step NAME CMD... — announce, run, and record wall-clock seconds.
step() {
    _name=$1
    shift
    echo "== $_name"
    _t0=$(date +%s)
    "$@"
    _t1=$(date +%s)
    STEP_TIMINGS="${STEP_TIMINGS}$((_t1 - _t0))s\t${_name}\n"
}

step "cargo fmt --check" \
    cargo fmt --check

step "cargo clippy -D warnings (lints are errors)" \
    cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo build --release --offline" \
    cargo build --release --offline --workspace

step "cargo check --offline (benches, examples, bins)" \
    cargo check --offline --workspace --all-targets

step "cargo test -q --offline" \
    cargo test -q --offline --workspace

step "chaos suite at pinned seed (fault injection + snapshot recovery)" \
    env SHAROES_TEST_SEED=0xC4A05EED cargo test -q --offline --test chaos

step "chaos + cluster failover at second pinned seed" \
    env SHAROES_TEST_SEED=0xC1057E42 cargo test -q --offline --test chaos --test cluster

step "chaos + cluster + metrics-determinism gate at third pinned seed" \
    env SHAROES_TEST_SEED=0x0B5EED42 \
    cargo test -q --offline --test chaos --test cluster --test obs_gate

# The obs_gate tests export the registry delta and the rendered trace trees
# of each identical seeded pass; diff them here as checks independent of the
# in-test assertions.
step "metrics determinism: diff exported registry deltas" \
    diff target/metrics-determinism-a.txt target/metrics-determinism-b.txt

step "trace determinism: diff exported span-tree renderings" \
    diff target/trace-determinism-a.txt target/trace-determinism-b.txt

step "enterprise scenario gate at fourth pinned seed (revocation + rotation oracles)" \
    env SHAROES_TEST_SEED=0xE57E4512 cargo test -q --offline --test enterprise

# Same independent check for the enterprise gate's registry exports.
step "enterprise determinism: diff exported registry deltas" \
    diff target/enterprise-registry-a.txt target/enterprise-registry-b.txt

step "crash-point recovery matrix at fifth pinned seed (log-engine durability)" \
    env SHAROES_TEST_SEED=0xC4A54F70 cargo test -q --offline --test crashpoints

step "authenticated-index gate at sixth pinned seed (verified scans + tamper oracle)" \
    env SHAROES_TEST_SEED=0x1DE15EED cargo test -q --offline --test index

# Same independent check for the index gate's registry and trace exports.
step "index determinism: diff exported registry deltas" \
    diff target/index-registry-a.txt target/index-registry-b.txt

step "index determinism: diff exported span-tree renderings" \
    diff target/index-trace-a.txt target/index-trace-b.txt

# Tracing-overhead ablation: spans off vs on over the same seeded workload,
# exported as BENCH_obs.json for the trajectory record.
step "tracing-overhead ablation (writes BENCH_obs.json)" \
    cargo run -q --offline --release -p sharoes-bench --bin paper-figures -- --quick obs

# Indexed-vs-flat scan ablation with proof overhead, exported as
# BENCH_index.json for the trajectory record.
step "authenticated-index scan ablation (writes BENCH_index.json)" \
    cargo run -q --offline --release -p sharoes-bench --bin paper-figures -- --quick index

echo ""
echo "== step timings"
printf "%b" "$STEP_TIMINGS"
echo "CI OK"
